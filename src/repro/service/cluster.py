"""Chartmesh — the partitioned botmeterd cluster tier.

One botmeterd charts one stream.  This module runs **N independent
partition daemons**, each owning the ``crc32(server) % N`` slice of the
vantage-point stream (:func:`~repro.service.workers.partition_for_server`
— the *same* keying the in-process ingest workers use), and merges their
per-partition landscape NDJSON into one global chart that is
**byte-identical** to what a single unpartitioned daemon would emit.

Three moving parts:

* **The splitter/router.**  Offline (:func:`cluster_replay`) a trace is
  split into per-partition input shards — every ``lookup`` line goes to
  its server's partition, the header is replicated into every shard,
  anything else (blank, corrupt) rides with partition 0 so reader
  accounting lands in exactly one place.  Online (:func:`cluster_serve`)
  a :class:`ClusterRouterFrontend` sits behind a normal
  :class:`~repro.service.netingest.NetIngestServer`: sensors speak the
  ordinary Sensornet protocol to the router, which re-streams each
  released line to its partition's own ingest socket over a
  :class:`~repro.service.netingest.SensorStream`.

* **The partitions.**  Plain :class:`~repro.service.daemon.BotMeterDaemon`
  processes.  A non-final replay segment runs with
  ``finalize_at_eof=False`` — at EOF it *drains*: flushes batches and
  checkpoints the open engine state (reorder buffer included) without
  force-closing epochs.  Only the last segment finalizes.

* **The aggregator.**  :func:`merge_landscape_rows` groups emitted rows
  by ``(epoch, family)``, unions the per-server cells (duplicate servers
  across partitions are a hard error — the router invariant), re-sums
  ``total`` over the sorted server order (the exact float-addition order
  a single daemon uses) and re-derives the quality ``loss`` from the
  summed counters.  Partition metrics fold through
  :func:`~repro.service.metrics.merge_registry_states` — the exact
  counter/histogram merge, not an approximation.

**Live resharding** (:func:`reshard_checkpoints`) moves a cluster from N
partitions to M (arbitrary N↔M) between segments: every partition drains
to its checkpoint, the shard lists are re-keyed by
``partition_for_server(server, M)``, reorder-buffer contents are
re-bucketed the same way, the new watermark is the **min** of the old
ones (every re-bucketed buffered record is at or past it, preserving the
"everything at or below the watermark is released" invariant) and the
emission cursor the min of the old ones — per-shard
``next_epoch_to_close`` cursors keep already-emitted epochs from being
contributed twice.  Pending quality
deltas (late/dropped counters vs their emission marks) fold onto
partition 0, so nothing is lost and nothing double-charges.

Why the merge is exact: each partition sees its slice of the sorted
stream in order, so it emits the same per-server estimates the single
daemon computes; each ``(epoch, family, server)`` cell is emitted by
exactly one partition segment (the shard cursor gate); and the
aggregator re-sums in sorted-server order, which is the insertion order
``Landscape.total`` uses.  :func:`cluster_replay` can verify the claim
end to end (``verify=True`` replays the trace through one daemon and
byte-compares), and the ``reshard`` CLI verb gates on it.
"""

from __future__ import annotations

import io
import json
import os
import sys
import time
from multiprocessing import get_all_start_methods, get_context
from pathlib import Path
from typing import IO, Any, Iterable, Mapping, Sequence

from ..core.confidence import ConfidenceInterval, widen_for_loss
from .checkpoint import CheckpointStore
from .daemon import BotMeterDaemon
from .engine import ENGINE_STATE_SCHEMA, validate_engine_state
from .metrics import MetricsRegistry, merge_registry_states
from .wire import NdjsonReader
from .wire2 import Wire2BatchDecoder, Wire2Writer, sniff_wire2
from .workers import partition_for_server

__all__ = [
    "CLUSTER_SCHEMA",
    "ClusterError",
    "ClusterVerifyError",
    "ClusterRouterFrontend",
    "cluster_replay",
    "cluster_serve",
    "merge_landscape_rows",
    "reshard_checkpoints",
    "restate_rows",
    "run_cluster_smoke",
    "run_partition",
    "split_header",
    "route_line",
]

CLUSTER_SCHEMA = "botmeterd-cluster-v1"

_QUALITY_KEYS = ("matched", "late", "dropped", "quarantined")

#: Partition states whose durable output can be trusted as current.
_FRESH_STATES = ("healthy", "lagging")


class ClusterError(RuntimeError):
    """A cluster operation could not complete."""


class ClusterVerifyError(ClusterError):
    """The merged cluster landscape differs from the single-daemon replay."""


# ---------------------------------------------------------------------------
# Splitting
# ---------------------------------------------------------------------------


def split_header(lines: Sequence[bytes]) -> tuple[list[bytes], list[bytes]]:
    """``(header_lines, payload_lines)`` — at most one leading header."""
    lines = [
        line if isinstance(line, bytes) else line.encode("utf-8") for line in lines
    ]
    if lines:
        try:
            data = json.loads(lines[0])
        except ValueError:
            data = None
        if isinstance(data, dict) and data.get("type") == "header":
            return [lines[0]], lines[1:]
    return [], lines


def _load_trace_units(trace: Path) -> tuple[str, Any, list[Any]]:
    """Sniff and load a trace as routable units.

    Returns ``(wire, header, units)``:

    * NDJSON — ``("ndjson", header_lines, payload_lines)``, the classic
      byte-line form :func:`split_header` produces; each unit routes via
      :func:`route_line`.
    * wire v2 — ``("v2", header_dict_or_None, events)`` where each unit
      is ``("rec", ForwardedLookup)`` (routes on its server directly, no
      JSON parse) or ``("corrupt", line, reason)`` (rides partition 0,
      exactly like a corrupt NDJSON line would).

    Segment plan boundaries count *units* either way — payload lines for
    NDJSON, records+quarantines for v2 — so a plan written for one
    encoding of a trace means the same cut points in the other.
    """
    raw = trace.read_bytes()
    if sniff_wire2(raw[:4]):
        decoder = Wire2BatchDecoder(NdjsonReader())
        events = decoder.push_events(raw)
        events.extend(decoder.flush(complete=True))
        header: dict[str, Any] | None = None
        units: list[Any] = []
        for event in events:
            if event[0] == "header":
                if header is None:
                    header = event[1]
            elif event[0] == "columns":
                units.extend(("rec", record) for record in event[1].materialize())
            else:
                units.append(("corrupt", event[1], event[2]))
        return "v2", header, units
    header_lines, payload = split_header(raw.splitlines())
    return "ndjson", header_lines, payload


def route_line(line: bytes, n_partitions: int) -> int:
    """The partition a payload line belongs to.

    ``lookup`` lines hash on their server; everything else — blank,
    corrupt, unknown types — deterministically rides with partition 0 so
    the reader-side accounting (skip counters, corrupt quarantine) lands
    in exactly one partition.
    """
    try:
        data = json.loads(line)
    except ValueError:
        return 0
    if not isinstance(data, dict):
        return 0
    server = data.get("server")
    # The wire format leaves ``type`` implicit on lookup lines (only
    # control/header lines carry one) — same convention as the mux.
    if data.get("type", "lookup") == "lookup" and isinstance(server, str):
        return partition_for_server(server, n_partitions)
    return 0


# ---------------------------------------------------------------------------
# The aggregator
# ---------------------------------------------------------------------------


def _parse_landscape_rows(stream: Iterable[bytes | str]) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    for line in stream:
        if isinstance(line, bytes):
            line = line.decode("utf-8")
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        if not isinstance(row, Mapping) or row.get("type") != "landscape":
            raise ClusterError(f"not a landscape row: {line[:120]!r}")
        rows.append(row)
    return rows


def _group_rows(
    parsed: Sequence[Sequence[Mapping[str, Any]]],
) -> dict[tuple[int, str], dict[str, Any]]:
    groups: dict[tuple[int, str], dict[str, Any]] = {}
    for rows in parsed:
        for row in rows:
            key = (int(row["epoch"]), str(row["family"]))
            group = groups.get(key)
            if group is None:
                group = {
                    "estimator": row["estimator"],
                    "servers": {},
                    "quality": {name: 0 for name in _QUALITY_KEYS},
                }
                groups[key] = group
            elif group["estimator"] != row["estimator"]:
                raise ClusterError(
                    f"epoch {key[0]} family {key[1]!r}: estimator mismatch "
                    f"{group['estimator']!r} vs {row['estimator']!r}"
                )
            for server, cell in row.get("servers", {}).items():
                if server in group["servers"]:
                    raise ClusterError(
                        f"epoch {key[0]} family {key[1]!r}: server "
                        f"{server!r} emitted by two partitions"
                    )
                group["servers"][server] = {
                    "estimate": cell["estimate"],
                    "matched": cell["matched"],
                }
            quality = row.get("quality", {})
            for name in _QUALITY_KEYS:
                group["quality"][name] += int(quality.get(name, 0))
    return groups


def _render_group(
    epoch: int,
    family: str,
    group: Mapping[str, Any],
    extra: Mapping[str, Any] | None = None,
    extra_quality: Mapping[str, Any] | None = None,
) -> str:
    servers = {
        server: group["servers"][server] for server in sorted(group["servers"])
    }
    total = sum(cell["estimate"] for cell in servers.values())
    quality = dict(group["quality"])
    lost = quality["late"] + quality["dropped"] + quality["quarantined"]
    denominator = quality["matched"] + lost
    quality["loss"] = round(lost / denominator, 6) if denominator else 0.0
    if extra_quality:
        quality.update(extra_quality)
    document: dict[str, Any] = {
        "v": 1,
        "type": "landscape",
        "family": family,
        "epoch": epoch,
        "estimator": group["estimator"],
        "total": total,
        "quality": quality,
        "servers": servers,
    }
    if extra:
        document.update(extra)
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def merge_landscape_rows(
    row_streams: Iterable[Iterable[bytes | str]],
    partition_status: Sequence[str] | None = None,
    quorum: int | None = None,
    confidence_level: float = 0.9,
) -> list[str]:
    """Merge per-partition landscape NDJSON rows into the global chart.

    Rows are grouped by ``(epoch, family)``; server cells union (a
    server appearing in two partitions' rows for the same epoch is a
    routing bug and raises), quality counters sum, and ``total`` and
    ``loss`` are re-derived — summed in sorted-server order, which is
    exactly the insertion order a single daemon's ``Landscape.total``
    folds in, so the merged line is byte-identical to the unpartitioned
    one.  Returns the merged lines in (epoch, family) order.

    **Quorum-degraded mode** (``partition_status`` given, one state per
    stream in order — ``healthy``/``lagging``/``down``/``disarmed``):
    at least ``quorum`` partitions (default strict majority) must be
    fresh or the merge raises.  With every partition fresh the output
    is the exact byte-identical merge.  With partitions down, rows are
    emitted only for epochs every *fresh* partition has already closed;
    an epoch a down partition never contributed to is marked
    ``quality.degraded_partitions`` and carries a ``confidence``
    interval — the visible total widened by the down partitions'
    last-known census share via
    :func:`repro.core.confidence.widen_for_loss` — so a reader knows
    exactly which rows understate the landscape and by how much at
    most.  Epochs the down partition *did* emit before dying merge
    exactly (its frozen output is real history, not an estimate).
    """
    parsed = [_parse_landscape_rows(stream) for stream in row_streams]
    if partition_status is None:
        groups = _group_rows(parsed)
        return [
            _render_group(epoch, family, groups[(epoch, family)])
            for epoch, family in sorted(groups)
        ]

    states = [str(state) for state in partition_status]
    if len(states) != len(parsed):
        raise ClusterError(
            f"{len(states)} partition states for {len(parsed)} row streams"
        )
    n = len(states)
    fresh = [i for i, state in enumerate(states) if state in _FRESH_STATES]
    down = [i for i, state in enumerate(states) if state not in _FRESH_STATES]
    if quorum is None:
        quorum = n // 2 + 1
    if len(fresh) < quorum:
        raise ClusterError(
            f"quorum lost: {len(fresh)} of {n} partitions fresh, "
            f"need {quorum} — refusing to merge"
        )
    groups = _group_rows(parsed)
    if not down:
        return [
            _render_group(epoch, family, groups[(epoch, family)])
            for epoch, family in sorted(groups)
        ]

    def _frontier(rows: Sequence[Mapping[str, Any]]) -> int | None:
        return max((int(row["epoch"]) for row in rows), default=None)

    # Only epochs every fresh partition has closed are final enough to
    # emit while degraded (partitions with no rows at all constrain
    # nothing — they have never demonstrated a closure frontier).
    fresh_frontiers = [
        frontier
        for frontier in (_frontier(parsed[i]) for i in fresh)
        if frontier is not None
    ]
    if not fresh_frontiers:
        return []
    emit_limit = min(fresh_frontiers)
    down_frontiers = {i: _frontier(parsed[i]) for i in down}
    # Last-known census per down partition and family: the estimate sum
    # of its newest emitted row — the best available bound on how much
    # landscape its missing slice represents.
    census: dict[int, dict[str, float]] = {}
    for i in down:
        newest: dict[str, tuple[int, float]] = {}
        for row in parsed[i]:
            epoch = int(row["epoch"])
            family = str(row["family"])
            if family not in newest or epoch > newest[family][0]:
                newest[family] = (
                    epoch,
                    sum(
                        cell["estimate"]
                        for cell in row.get("servers", {}).values()
                    ),
                )
        census[i] = {family: share for family, (_, share) in newest.items()}

    merged: list[str] = []
    for epoch, family in sorted(groups):
        if epoch > emit_limit:
            continue
        group = groups[(epoch, family)]
        missing = [
            i
            for i in down
            if down_frontiers[i] is None or epoch > down_frontiers[i]
        ]
        if not missing:
            merged.append(_render_group(epoch, family, group))
            continue
        total = sum(cell["estimate"] for cell in group["servers"].values())
        down_known = 0.0
        unknown = False
        for i in missing:
            share = census[i].get(family)
            if share is None:
                unknown = True
            else:
                down_known += share
        confidence: dict[str, Any] | None = None
        if not unknown:
            loss = (
                down_known / (down_known + total)
                if down_known + total > 0
                else 0.0
            )
            interval = widen_for_loss(
                ConfidenceInterval(
                    low=max(0.0, total - down_known),
                    point=total,
                    high=total + down_known,
                    level=confidence_level,
                ),
                loss,
            )
            confidence = {
                "low": interval.low,
                "point": interval.point,
                "high": interval.high,
                "level": interval.level,
            }
        merged.append(
            _render_group(
                epoch,
                family,
                group,
                extra={"confidence": confidence},
                extra_quality={
                    "degraded_partitions": [f"p{i:02d}" for i in missing]
                },
            )
        )
    return merged


def restate_rows(
    exact_rows: Iterable[bytes | str],
    degraded_keys: Iterable[tuple[int, str]],
) -> list[str]:
    """Exact re-emissions for rows previously published degraded.

    Once a down partition recovers and its spool drains, the rows that
    went out with ``degraded_partitions`` markings have exact
    replacements in the final merge.  This returns those replacements
    flagged ``"restated": true`` — same bytes as the exact row plus the
    flag, so a consumer can idempotently supersede the degraded
    version.  Order follows ``exact_rows``.
    """
    keys = {(int(epoch), str(family)) for epoch, family in degraded_keys}
    restated: list[str] = []
    for line in exact_rows:
        if isinstance(line, bytes):
            line = line.decode("utf-8")
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        if (int(row["epoch"]), str(row["family"])) in keys:
            row["restated"] = True
            restated.append(
                json.dumps(row, sort_keys=True, separators=(",", ":"))
            )
    return restated


# ---------------------------------------------------------------------------
# Resharding
# ---------------------------------------------------------------------------


def _sum_key(documents: Sequence[Mapping[str, Any]], *path: str) -> int:
    total = 0
    for document in documents:
        node: Any = document
        for key in path[:-1]:
            node = node.get(key, {})
        total += int(node.get(path[-1], 0))
    return total


def reshard_checkpoints(
    documents: Sequence[Mapping[str, Any]],
    new_n: int,
    partition_states: Sequence[str] | None = None,
) -> list[dict[str, Any]]:
    """Re-key N drained partition checkpoints into M fresh ones.

    Every input document must be a drained (``finalize_at_eof=False``)
    daemon checkpoint.  Shard states and reorder-buffer contents are
    re-bucketed by ``partition_for_server(server, new_n)``; the new
    watermark is the *min* of the old ones (every buffered record sits
    at or past its own partition's watermark, so the min is the widest
    frontier that keeps "everything at or below the watermark is
    released" true over the merged buffers) and the new emission cursor
    the min — per-shard ``next_epoch_to_close`` cursors keep epochs an
    old partition already emitted from being contributed again.  All
    cross-partition history — reader counters, records consumed, metric
    states, pending late/dropped quality deltas — folds onto partition
    0; the other partitions start their daemon-level accounting at zero,
    so the final fold over the new partitions equals the fold over the
    old ones exactly.

    Returns ``new_n`` checkpoint state dicts (``input`` left empty for
    the caller to fill; ``input_offset`` 0 — re-feeding a shard's header
    line on resume is idempotent).

    ``partition_states`` (one state string per document, e.g. from
    :func:`repro.service.meshguard.partition_states_from_heartbeats`)
    gates the operation: a ``down``/``disarmed`` partition's checkpoint
    is *stale durable state* — resharding it would fossilize whatever
    it had charted when it died and silently drop everything routed to
    it since — so the reshard refuses, naming the stale partition.
    """
    if not documents:
        raise ClusterError("reshard needs at least one partition checkpoint")
    if partition_states is not None:
        states = [str(state) for state in partition_states]
        if len(states) != len(documents):
            raise ClusterError(
                f"{len(states)} partition states for "
                f"{len(documents)} checkpoints"
            )
        stale = [
            index
            for index, state in enumerate(states)
            if state not in _FRESH_STATES
        ]
        if stale:
            raise ClusterError(
                f"cannot reshard: partition {stale[0]} is "
                f"{states[stale[0]]} — its checkpoint is stale; recover "
                "the partition (or disarm and drop it) before resharding"
            )
    new_n = int(new_n)
    if new_n < 1:
        raise ClusterError(f"cannot reshard to {new_n} partitions")
    engines = [validate_engine_state(doc["engine"]) for doc in documents]
    families = sorted(engines[0]["families"])
    for state in engines[1:]:
        if sorted(state["families"]) != families:
            raise ClusterError(
                f"partition family sets differ: {families} vs "
                f"{sorted(state['families'])}"
            )
    if any(state["finalized"] for state in engines):
        raise ClusterError("cannot reshard a finalized partition")
    reorders = [state["reorder"] for state in engines]
    capacity = int(reorders[0]["capacity"])
    policy = reorders[0]["policy"]
    for reorder in reorders[1:]:
        if int(reorder["capacity"]) != capacity or reorder["policy"] != policy:
            raise ClusterError("partition reorder configurations differ")
    # The engine invariant behind exact emission is "every record with
    # ts <= watermark has been released into its shard".  Each drained
    # buffer holds only records at or past its own partition's
    # watermark (the stream is sorted), so the *min* keeps the
    # invariant over the merged buffers; max would close the laggards'
    # open epochs on first release while their matches still sit
    # buffered, turning them late.  Closure timing doesn't change
    # emitted bytes — only release order does, and the merged heap
    # still releases in timestamp order.
    watermark: Any = None
    if all(state["watermark"] is not None for state in engines):
        watermark = min(state["watermark"] for state in engines)
    next_emit = min(int(state["next_epoch_to_emit"]) for state in engines)
    max_seens = [
        reorder["max_seen"] for reorder in reorders if reorder["max_seen"] is not None
    ]
    max_seen = max(max_seens) if max_seens else None

    reorder_buckets: list[list[Any]] = [[] for _ in range(new_n)]
    for reorder in reorders:
        for data in reorder["contents"]:
            server = data.get("server")
            target = (
                partition_for_server(server, new_n)
                if isinstance(server, str)
                else 0
            )
            reorder_buckets[target].append(data)
    for bucket in reorder_buckets:
        bucket.sort(key=lambda d: (d["timestamp"], d["server"], d["domain"]))

    shard_buckets: list[list[list[Any]]] = [[] for _ in range(new_n)]
    owners: set[tuple[str, str]] = set()
    for state in engines:
        for family, server, shard_state in state["shards"]:
            key = (family, server)
            if key in owners:
                raise ClusterError(
                    f"shard {key!r} appears in two partition checkpoints"
                )
            owners.add(key)
            shard_buckets[partition_for_server(server, new_n)].append(
                [family, server, shard_state]
            )
    for bucket in shard_buckets:
        bucket.sort(key=lambda entry: (entry[0], entry[1]))

    merged_metrics = merge_registry_states(
        [doc.get("metrics", {}) for doc in documents]
    ).export_state()
    empty_metrics = MetricsRegistry().export_state()
    out: list[dict[str, Any]] = []
    for index in range(new_n):
        first = index == 0
        engine_state = {
            "schema": ENGINE_STATE_SCHEMA,
            "families": list(families),
            "watermark": watermark,
            "next_epoch_to_emit": next_emit,
            "finalized": False,
            "late_total": _sum_key(engines, "late_total") if first else 0,
            "late_mark": _sum_key(engines, "late_mark") if first else 0,
            "dropped_mark": _sum_key(engines, "dropped_mark") if first else 0,
            "reorder": {
                "capacity": capacity,
                "policy": policy,
                "max_seen": max_seen,
                "contents": reorder_buckets[index],
                "reordered": _sum_key(reorders, "reordered") if first else 0,
                "dropped": _sum_key(reorders, "dropped") if first else 0,
                "released": _sum_key(reorders, "released") if first else 0,
            },
            "shards": shard_buckets[index],
        }
        out.append(
            {
                "input": "",
                "input_offset": 0,
                "landscapes_emitted": 0,
                "records_consumed": (
                    _sum_key(documents, "records_consumed") if first else 0
                ),
                "quarantined_mark": (
                    _sum_key(documents, "quarantined_mark") if first else 0
                ),
                "reader": {
                    "records": _sum_key(documents, "reader", "records") if first else 0,
                    "blank": _sum_key(documents, "reader", "blank") if first else 0,
                    "corrupt": _sum_key(documents, "reader", "corrupt") if first else 0,
                    "truncated_tail": (
                        _sum_key(documents, "reader", "truncated_tail")
                        if first
                        else 0
                    ),
                },
                "engine": validate_engine_state(engine_state),
                "metrics": merged_metrics if first else empty_metrics,
            }
        )
    return out


# ---------------------------------------------------------------------------
# Partition processes
# ---------------------------------------------------------------------------


def run_partition(config: Mapping[str, Any]) -> int:
    """Run one partition daemon from a plain-dict config; returns its
    exit code.  The config is all primitives so it crosses a process
    boundary under any multiprocessing start method."""
    log_path = config.get("log")
    log = open(log_path, "a") if log_path else open(os.devnull, "w")
    try:
        daemon = BotMeterDaemon(
            config["input"],
            out_path=config["out"],
            checkpoint_path=config["checkpoint"],
            estimator=config.get("estimator", "auto"),
            grace=config.get("grace", 900.0),
            reorder_capacity=config.get("reorder_capacity", 1024),
            checkpoint_every=config.get("checkpoint_every", 500),
            batch_lines=config.get("batch_lines", 256),
            throttle=config.get("throttle", 0.0),
            trace_out=config.get("trace_out"),
            trace_sample=config.get("trace_sample", 0),
            finalize_at_eof=config.get("finalize_at_eof", True),
            log_stream=log,
        )
        return daemon.run()
    finally:
        log.close()


def _partition_main(config: Mapping[str, Any]) -> None:
    sys.exit(run_partition(config))


def _run_partitions(
    configs: Sequence[Mapping[str, Any]], serial: bool = False
) -> None:
    """Run a segment's partition daemons to completion (processes by
    default, in-process sequentially with ``serial`` — the output bytes
    are identical either way, the partitions share nothing)."""
    if serial or len(configs) == 1:
        for config in configs:
            code = run_partition(config)
            if code:
                raise ClusterError(
                    f"partition {config.get('label')} exited with code {code}"
                )
        return
    method = "fork" if "fork" in get_all_start_methods() else "spawn"
    ctx = get_context(method)
    procs = []
    for config in configs:
        proc = ctx.Process(
            target=_partition_main,
            args=(dict(config),),
            name=f"botmeterd-{config.get('label', 'partition')}",
        )
        proc.start()
        procs.append(proc)
    for proc in procs:
        proc.join()
    failed = [
        (config.get("label"), proc.exitcode)
        for config, proc in zip(configs, procs)
        if proc.exitcode != 0
    ]
    if failed:
        raise ClusterError(f"partition processes failed: {failed}")


# ---------------------------------------------------------------------------
# Offline replay (and reshard) orchestration
# ---------------------------------------------------------------------------


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def _atomic_write_json(path: Path, document: Mapping[str, Any]) -> None:
    _atomic_write_bytes(
        path, (json.dumps(document, indent=2, sort_keys=True) + "\n").encode("utf-8")
    )


def _normalize_plan(
    partitions: int | None,
    plan: Sequence[tuple[int, int | None]] | None,
    payload_lines: int,
) -> list[dict[str, int]]:
    """``[(n, end)]`` -> concrete ``[{index, partitions, start, end}]``."""
    if plan is None:
        if partitions is None:
            raise ClusterError("need either partitions= or plan=")
        plan = [(int(partitions), None)]
    segments: list[dict[str, int]] = []
    start = 0
    for index, (n, end) in enumerate(plan):
        n = int(n)
        if n < 1:
            raise ClusterError(f"segment {index}: {n} partitions")
        last = index == len(plan) - 1
        stop = payload_lines if (end is None or last) else min(int(end), payload_lines)
        if stop < start:
            raise ClusterError(
                f"segment {index}: end {stop} precedes start {start}"
            )
        segments.append(
            {"index": index, "partitions": n, "start": start, "end": stop}
        )
        start = stop
    return segments


def _seg_paths(
    workdir: Path, segment: int, partition: int, wire: str = "ndjson"
) -> dict[str, Path]:
    stem = f"seg{segment}-p{partition:02d}"
    return {
        "input": workdir / f"{stem}.in.{'v2' if wire == 'v2' else 'ndjson'}",
        "out": workdir / f"{stem}.out.ndjson",
        "checkpoint": workdir / f"{stem}.ck.json",
        "trace": workdir / f"{stem}.trace.ndjson",
    }


def _clear_segment_state(workdir: Path) -> None:
    for path in sorted(workdir.glob("seg*")):
        path.unlink()
    for name in ("landscape.ndjson", "metrics.prom", "manifest.json"):
        target = workdir / name
        if target.exists():
            target.unlink()


def single_daemon_replay(
    trace: str | Path,
    out: str | Path,
    *,
    estimator: Any = "auto",
    grace: float = 900.0,
    reorder_capacity: int = 1024,
    batch_lines: int = 256,
    trace_sample: int = 0,
) -> None:
    """The unpartitioned reference replay (the byte-identity oracle)."""
    with open(os.devnull, "w") as log:
        daemon = BotMeterDaemon(
            trace,
            out_path=out,
            estimator=estimator,
            grace=grace,
            reorder_capacity=reorder_capacity,
            batch_lines=batch_lines,
            trace_sample=trace_sample,
            log_stream=log,
        )
        code = daemon.run()
    if code:
        raise ClusterError(f"reference replay exited with code {code}")


def cluster_replay(
    trace: str | Path,
    workdir: str | Path,
    partitions: int | None = None,
    plan: Sequence[tuple[int, int | None]] | None = None,
    *,
    verify: bool = True,
    serial: bool = False,
    estimator: Any = "auto",
    grace: float = 900.0,
    reorder_capacity: int = 1024,
    batch_lines: int = 256,
    checkpoint_every: int = 100_000,
    trace_sample: int = 0,
    log: IO[str] | None = None,
) -> dict[str, Any]:
    """Replay a trace through a partitioned cluster; optionally reshard.

    ``plan`` is a list of ``(n_partitions, end_payload_line)`` segments
    (the last segment's end is always the stream end); a single-segment
    plan is plain partitioned replay, a multi-segment plan executes one
    live reshard per boundary: the outgoing partitions **drain** to
    checkpoints at their segment's end, :func:`reshard_checkpoints`
    re-keys the drained state to the next width, and the incoming
    partitions resume from the synthesized checkpoints.

    The run is **crash-resumable**: a manifest plus per-segment
    ``prepared``/``done`` markers make every phase idempotent, and a
    partition killed mid-segment resumes from its own newest checkpoint
    exactly like a standalone daemon would.  With ``verify=True`` the
    merged landscape is byte-compared against a fresh single-daemon
    replay and a mismatch raises :class:`ClusterVerifyError` — the gate
    the ``reshard`` verb ships behind.
    """
    trace = Path(trace)
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    log = log if log is not None else sys.stderr
    wire, header, payload = _load_trace_units(trace)
    segments = _normalize_plan(partitions, plan, len(payload))
    manifest = {
        "schema": CLUSTER_SCHEMA,
        "trace": str(trace),
        "wire": wire,
        "payload_lines": len(payload),
        "segments": segments,
        "engine": {
            "estimator": str(estimator),
            "grace": grace,
            "reorder_capacity": int(reorder_capacity),
            "batch_lines": int(batch_lines),
            "trace_sample": int(trace_sample),
        },
    }
    manifest_path = workdir / "manifest.json"
    resumed = False
    if manifest_path.exists():
        try:
            existing = json.loads(manifest_path.read_text())
        except ValueError:
            existing = None
        if existing == manifest:
            resumed = True
        else:
            _clear_segment_state(workdir)
    _atomic_write_json(manifest_path, manifest)

    t0 = time.monotonic()
    for segment in segments:
        g = segment["index"]
        n = segment["partitions"]
        final = g == len(segments) - 1
        done_marker = workdir / f"seg{g}.done.json"
        if done_marker.exists():
            continue
        prepared_marker = workdir / f"seg{g}.prepared.json"
        paths = [_seg_paths(workdir, g, i, wire) for i in range(n)]
        if not prepared_marker.exists():
            # Phase A — prepare: shard the segment's inputs, and (past
            # the first boundary) synthesize the resharded checkpoints.
            # Idempotent: the previous segment's drained checkpoints are
            # immutable once its done marker exists, so a crash anywhere
            # in here replays to the identical state.
            for stale in sorted(workdir.glob(f"seg{g}-p*")):
                stale.unlink()
            if wire == "v2":
                # v2 partition inputs are framed, not line-bucketed: the
                # META frame replicates into every shard, records route
                # on their server field directly (no JSON parse), and
                # quarantined units ride partition 0 — the same
                # placement route_line gives their NDJSON twins.
                buffers = [io.BytesIO() for _ in range(n)]
                writers = [Wire2Writer(buffer) for buffer in buffers]
                if header is not None:
                    for writer in writers:
                        writer.write_header(header)
                for unit in payload[segment["start"] : segment["end"]]:
                    if unit[0] == "rec":
                        writers[partition_for_server(unit[1].server, n)].add(
                            unit[1]
                        )
                    else:
                        writers[0].add_corrupt(unit[1], unit[2])
                for i in range(n):
                    writers[i].close()
                    _atomic_write_bytes(paths[i]["input"], buffers[i].getvalue())
            else:
                buckets: list[list[bytes]] = [list(header) for _ in range(n)]
                for line in payload[segment["start"] : segment["end"]]:
                    buckets[route_line(line, n)].append(line)
                for i in range(n):
                    body = b"\n".join(buckets[i]) + (b"\n" if buckets[i] else b"")
                    _atomic_write_bytes(paths[i]["input"], body)
            if g > 0:
                previous = segments[g - 1]
                old_docs = []
                for i in range(previous["partitions"]):
                    store = CheckpointStore(
                        _seg_paths(workdir, g - 1, i)["checkpoint"]
                    )
                    document = store.load()
                    if document is None:
                        raise ClusterError(
                            f"segment {g - 1} partition {i} left no "
                            "checkpoint to reshard from"
                        )
                    old_docs.append(document)
                synthesized = reshard_checkpoints(old_docs, n)
                for i, document in enumerate(synthesized):
                    document["input"] = str(paths[i]["input"])
                    CheckpointStore(paths[i]["checkpoint"]).save(document)
            _atomic_write_json(
                prepared_marker,
                {"segment": g, "partitions": n, "lines": segment["end"] - segment["start"]},
            )
        configs = [
            {
                "label": f"seg{g}-p{i:02d}",
                "input": str(paths[i]["input"]),
                "out": str(paths[i]["out"]),
                "checkpoint": str(paths[i]["checkpoint"]),
                "estimator": estimator,
                "grace": grace,
                "reorder_capacity": reorder_capacity,
                "batch_lines": batch_lines,
                "checkpoint_every": checkpoint_every,
                "trace_out": str(paths[i]["trace"]) if trace_sample > 0 else None,
                "trace_sample": trace_sample,
                "finalize_at_eof": final,
            }
            for i in range(n)
        ]
        _run_partitions(configs, serial=serial)
        cursors = {}
        for i in range(n):
            document = CheckpointStore(paths[i]["checkpoint"]).load()
            if document is None:
                raise ClusterError(
                    f"segment {g} partition {i} finished without a checkpoint"
                )
            cursors[f"p{i:02d}"] = {
                "records_consumed": int(document["records_consumed"]),
                "landscapes_emitted": int(document["landscapes_emitted"]),
            }
        _atomic_write_json(
            done_marker, {"segment": g, "partitions": n, "cursors": cursors}
        )
        print(
            f"cluster-replay: segment {g} done "
            f"({n} partitions, lines {segment['start']}..{segment['end']})",
            file=log,
        )

    row_streams = []
    for segment in segments:
        for i in range(segment["partitions"]):
            out_path = _seg_paths(workdir, segment["index"], i)["out"]
            # A partition that neither ingested nor emitted anything in
            # its segment never created the file — an empty contribution.
            if out_path.exists():
                row_streams.append(out_path.read_bytes().splitlines())
    merged = merge_landscape_rows(row_streams)
    landscape_path = workdir / "landscape.ndjson"
    landscape_path.write_text("\n".join(merged) + ("\n" if merged else ""))
    last = segments[-1]
    final_metrics = merge_registry_states(
        [
            CheckpointStore(
                _seg_paths(workdir, last["index"], i)["checkpoint"]
            ).load()["metrics"]
            for i in range(last["partitions"])
        ]
    )
    (workdir / "metrics.prom").write_text(final_metrics.render_prometheus())

    report: dict[str, Any] = {
        "schema": "botmeterd-cluster-report-v1",
        "trace": str(trace),
        "payload_lines": len(payload),
        "segments": segments,
        "resumed": resumed,
        "rows": len(merged),
        "landscape": str(landscape_path),
        "elapsed_seconds": round(time.monotonic() - t0, 3),
        "verified": None,
    }
    if verify:
        reference_path = workdir / "reference.ndjson"
        single_daemon_replay(
            trace,
            reference_path,
            estimator=estimator,
            grace=grace,
            reorder_capacity=reorder_capacity,
            batch_lines=batch_lines,
        )
        identical = reference_path.read_bytes() == landscape_path.read_bytes()
        report["verified"] = identical
        if not identical:
            raise ClusterVerifyError(
                f"merged landscape {landscape_path} differs from the "
                f"single-daemon replay {reference_path} "
                f"({len(merged)} merged rows)"
            )
    return report


# ---------------------------------------------------------------------------
# Live serving: the router front end
# ---------------------------------------------------------------------------


class _RouterReader:
    """The one reader attribute the ingest server touches on its daemon."""

    def __init__(self) -> None:
        self.header: dict[str, Any] | None = None


class ClusterRouterFrontend:
    """A duck-typed *daemon* that routes instead of charting.

    Drop-in for :class:`~repro.service.netingest.NetIngestServer`'s
    ``daemon`` slot: sensors speak the normal Sensornet protocol to the
    router, whose mux merges them into one deterministic released-line
    sequence; this front end splits that sequence by
    ``partition_for_server`` and re-streams each slice to its partition
    daemon's ingest socket (a :class:`~repro.service.netingest.SensorStream`
    per partition).  Headers broadcast to every partition (setting one
    twice is free); non-lookup payload rides with partition 0, matching
    the offline splitter.

    The router itself is stateless (``store`` is ``None`` — no router
    checkpoints, no mid-stream acks): durability lives in the partition
    daemons.  A restarted router replays the same deterministic sequence
    and each partition's welcome cursor tells its stream how much to
    skip, so exactly-once delivery holds end to end.  Sensors get their
    ``bye`` only after every partition confirmed its slice durable.
    """

    def __init__(
        self,
        streams: Sequence[Any],
        log_stream: IO[str] | None = None,
        on_finish: Any = None,
    ) -> None:
        self.streams = list(streams)
        self._on_finish = on_finish
        if not self.streams:
            raise ClusterError("a cluster router needs at least one partition")
        self.metrics = MetricsRegistry()
        self.tracer = None
        self.store = None
        self.reader = _RouterReader()
        self.checkpoint_every = 1 << 62  # store is None; never reached
        self._since_checkpoint = 0
        self.extra_checkpoint_state: Any = None
        self._log = log_stream if log_stream is not None else sys.stderr
        self._c_routed = self.metrics.counter(
            "botmeterd_cluster_routed_lines_total",
            "Payload lines routed to a partition stream.",
        )
        #: Final durable cursor per partition stream (set at finish).
        self.cursors: dict[str, int] = {}
        self.finished = False

    # -- daemon surface the ingest server drives -----------------------------

    def _log_event(self, event: str, **fields: Any) -> None:
        payload = {"event": event, **fields}
        print(json.dumps(payload, sort_keys=True), file=self._log, flush=True)

    def _fresh_outputs(self) -> None:
        pass

    def _attach_trace_sink(self, resumed: bool) -> None:
        pass

    def _dump_observability(self) -> None:
        pass

    def _checkpoint(self, offset: int) -> None:  # pragma: no cover
        pass  # store is None — the server never calls this

    def _consume_parsed_many(self, pairs: Sequence[tuple[bytes, Any]]) -> None:
        n = len(self.streams)
        buckets: list[list[bytes]] = [[] for _ in range(n)]
        for raw, data in pairs:
            if isinstance(raw, str):
                raw = raw.encode("utf-8")
            if isinstance(data, dict):
                kind = data.get("type", "lookup")
                server = data.get("server")
                if kind == "lookup" and isinstance(server, str):
                    buckets[partition_for_server(server, n)].append(raw)
                    continue
                if kind == "header":
                    if self.reader.header is None:
                        self.reader.header = dict(data)
                    for bucket in buckets:
                        bucket.append(raw)
                    continue
            buckets[0].append(raw)
        for index, (stream, bucket) in enumerate(zip(self.streams, buckets)):
            if bucket:
                stream.send_lines(bucket)
                self._c_routed.inc(len(bucket), partition=f"{index:02d}")

    def _finish_stream(self, lines_released: int) -> None:
        if self._on_finish is not None:
            # Fires *before* partition streams finish: the supervised
            # serve path uses this to stand down the watch loop, which
            # would otherwise read the partitions' clean exits as
            # faults and restart them mid-shutdown.
            self._on_finish()
        for stream in self.streams:
            self.cursors[stream.sensor] = stream.finish()
        self.finished = True
        self._log_event(
            "cluster_router_finished",
            lines=lines_released,
            cursors=dict(self.cursors),
        )

    def _cleanup(self) -> None:
        for stream in self.streams:
            stream.close()


def _supervised_cluster_serve(
    workdir: Path,
    n: int,
    *,
    tcp: tuple[str, int] | None,
    uds: str | Path | None,
    addr_file: str | Path | None,
    expect_sensors: int | None,
    estimator: Any,
    grace: float,
    reorder_capacity: int,
    batch_lines: int,
    checkpoint_every: int,
    trace_sample: int,
    max_partition_restarts: int,
    mesh_seed: int,
    heartbeat_interval: float,
    lag_after: float,
    down_after: float,
    log: IO[str],
) -> dict[str, Any]:
    """The fault-tolerant serve path: partition *processes* under a
    :class:`~repro.service.meshguard.ClusterSupervisor`, failover
    streams with durable spools, and a background supervision loop
    restarting dead or wedged partitions from their own checkpoints."""
    import threading

    from .meshguard import ClusterSupervisor, FailoverSensorStream
    from .netingest import NetIngestServer
    from .supervisor import BackoffPolicy

    supervisor = ClusterSupervisor(
        workdir,
        n,
        estimator=estimator,
        grace=grace,
        reorder_capacity=reorder_capacity,
        batch_lines=batch_lines,
        checkpoint_every=checkpoint_every,
        trace_sample=trace_sample,
        max_partition_restarts=max_partition_restarts,
        backoff=BackoffPolicy(seed=mesh_seed),
        heartbeat_interval=heartbeat_interval,
        lag_after=lag_after,
        down_after=down_after,
        log_stream=log,
    )
    streams: list[Any] = []
    quiesced = threading.Event()

    def _watch() -> None:
        while not quiesced.wait(heartbeat_interval):
            supervisor.poll()
            supervisor.quorum_ok()

    watcher = threading.Thread(target=_watch, name="mesh-watch", daemon=True)
    try:
        supervisor.start()
        supervisor.wait_ready()
        for i in range(n):
            stream = FailoverSensorStream(
                ("uds", supervisor.socket_path(i)),
                f"router-p{i:02d}",
                spool_path=workdir / f"p{i:02d}.spool.ndjson",
                metrics=supervisor.metrics,
            )
            stream.connect()
            streams.append(stream)
        watcher.start()
        frontend = ClusterRouterFrontend(
            streams, log_stream=log, on_finish=quiesced.set
        )
        router = NetIngestServer(
            frontend,
            tcp=tcp,
            uds=uds,
            addr_file=addr_file,
            expect_sensors=expect_sensors,
        )
        code = router.serve()
        codes = supervisor.wait()
        bad = [c for c in codes if c not in (0, None)]
        if bad:
            raise ClusterError(f"partition exit codes after serve: {codes}")
    finally:
        quiesced.set()
        if watcher.is_alive():
            watcher.join(timeout=10)
        for stream in streams:
            stream.close()
        supervisor.stop()
    merged = merge_landscape_rows(
        [
            (workdir / f"p{i:02d}.out.ndjson").read_bytes().splitlines()
            for i in range(n)
            if (workdir / f"p{i:02d}.out.ndjson").exists()
        ]
    )
    landscape_path = workdir / "landscape.ndjson"
    landscape_path.write_text("\n".join(merged) + ("\n" if merged else ""))
    folded = merge_registry_states(
        [
            CheckpointStore(workdir / f"p{i:02d}.ck.json").load()["metrics"]
            for i in range(n)
        ]
    )
    (workdir / "metrics.prom").write_text(folded.render_prometheus())
    (workdir / "mesh-metrics.prom").write_text(
        supervisor.metrics.render_prometheus()
    )
    _atomic_write_json(
        workdir / "mesh-ledger.json",
        {
            "schema": "botmeterd-mesh-ledger-v1",
            "ledger": supervisor.ledger,
            "restarts": {
                part.label: part.restarts for part in supervisor.partitions
            },
        },
    )
    return {
        "schema": "botmeterd-cluster-serve-v1",
        "partitions": n,
        "exit_code": code,
        "rows": len(merged),
        "landscape": str(landscape_path),
        "cursors": dict(frontend.cursors),
        "supervised": True,
        "restarts": sum(part.restarts for part in supervisor.partitions),
        "spooled": sum(stream.spooled for stream in streams),
        "replayed": sum(stream.replayed for stream in streams),
    }


def cluster_serve(
    workdir: str | Path,
    partitions: int = 3,
    *,
    tcp: tuple[str, int] | None = None,
    uds: str | Path | None = None,
    addr_file: str | Path | None = None,
    expect_sensors: int | None = None,
    estimator: Any = "auto",
    grace: float = 900.0,
    reorder_capacity: int = 1024,
    batch_lines: int = 256,
    checkpoint_every: int = 500,
    trace_sample: int = 0,
    supervised: bool = False,
    max_partition_restarts: int = 3,
    mesh_seed: int = 0,
    heartbeat_interval: float = 0.25,
    lag_after: float = 5.0,
    down_after: float = 15.0,
    log: IO[str] | None = None,
) -> dict[str, Any]:
    """Serve Sensornet ingest through an N-partition cluster.

    Spins up ``partitions`` in-process partition daemons (each behind
    its own UDS ingest server under ``workdir``), connects the router's
    per-partition streams, then serves the public listener until every
    expected sensor has finned.  Partitions checkpoint independently —
    a restarted ``cluster-serve`` resumes them from their own
    checkpoints while sensors resend from their acked cursors, exactly
    the single-daemon Sensornet recovery story, N times over.  On a
    clean finish the per-partition landscapes merge into
    ``workdir/landscape.ndjson`` and the folded metrics into
    ``workdir/metrics.prom``.

    With ``supervised=True`` the partitions run as *processes* under a
    :class:`~repro.service.meshguard.ClusterSupervisor` (heartbeats,
    seeded-backoff restarts, disarming) and the router's streams become
    :class:`~repro.service.meshguard.FailoverSensorStream` — a dead
    partition's lines spool durably and replay on recovery, so a
    partition crash costs latency, not records.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    log = log if log is not None else sys.stderr
    n = int(partitions)
    if n < 1:
        raise ClusterError(f"cannot serve {n} partitions")
    if tcp is None and uds is None:
        tcp = ("127.0.0.1", 0)
    if supervised:
        return _supervised_cluster_serve(
            workdir,
            n,
            tcp=tcp,
            uds=uds,
            addr_file=addr_file,
            expect_sensors=expect_sensors,
            estimator=estimator,
            grace=grace,
            reorder_capacity=reorder_capacity,
            batch_lines=batch_lines,
            checkpoint_every=checkpoint_every,
            trace_sample=trace_sample,
            max_partition_restarts=max_partition_restarts,
            mesh_seed=mesh_seed,
            heartbeat_interval=heartbeat_interval,
            lag_after=lag_after,
            down_after=down_after,
            log=log,
        )
    from .netingest import NetIngestServer, SensorStream

    backends: list[Any] = []
    threads: list[Any] = []
    streams: list[Any] = []
    devnull = open(os.devnull, "w")
    try:
        for i in range(n):
            daemon = BotMeterDaemon(
                f"cluster:p{i:02d}",
                out_path=workdir / f"p{i:02d}.out.ndjson",
                checkpoint_path=workdir / f"p{i:02d}.ck.json",
                estimator=estimator,
                grace=grace,
                reorder_capacity=reorder_capacity,
                batch_lines=batch_lines,
                checkpoint_every=checkpoint_every,
                trace_out=(
                    workdir / f"p{i:02d}.trace.ndjson" if trace_sample > 0 else None
                ),
                trace_sample=trace_sample,
                log_stream=devnull,
            )
            backends.append(
                NetIngestServer(
                    daemon, uds=workdir / f"p{i:02d}.sock", expect_sensors=1
                )
            )
        for server in backends:
            threads.append(server.run_in_thread())
        for i, server in enumerate(backends):
            stream = SensorStream(("uds", server.uds_path), f"router-p{i:02d}")
            stream.connect()
            streams.append(stream)
        frontend = ClusterRouterFrontend(streams, log_stream=log)
        router = NetIngestServer(
            frontend,
            tcp=tcp,
            uds=uds,
            addr_file=addr_file,
            expect_sensors=expect_sensors,
        )
        try:
            code = router.serve()
        finally:
            if not frontend.finished:
                # The router died mid-stream: release the partition
                # servers from their wait so the threads can unwind.
                for server in backends:
                    server.stop()
        for thread in threads:
            thread.join(timeout=60)
        for i, server in enumerate(backends):
            if server.error is not None:
                raise ClusterError(
                    f"partition {i} ingest failed: {server.error!r}"
                ) from server.error
        merged = merge_landscape_rows(
            [
                (workdir / f"p{i:02d}.out.ndjson").read_bytes().splitlines()
                for i in range(n)
                if (workdir / f"p{i:02d}.out.ndjson").exists()
            ]
        )
        landscape_path = workdir / "landscape.ndjson"
        landscape_path.write_text("\n".join(merged) + ("\n" if merged else ""))
        folded = merge_registry_states(
            [
                CheckpointStore(workdir / f"p{i:02d}.ck.json").load()["metrics"]
                for i in range(n)
            ]
        )
        (workdir / "metrics.prom").write_text(folded.render_prometheus())
        return {
            "schema": "botmeterd-cluster-serve-v1",
            "partitions": n,
            "exit_code": code,
            "rows": len(merged),
            "landscape": str(landscape_path),
            "cursors": dict(frontend.cursors),
        }
    finally:
        for stream in streams:
            stream.close()
        devnull.close()


# ---------------------------------------------------------------------------
# Smoke
# ---------------------------------------------------------------------------


def run_cluster_smoke(
    workdir: str | Path,
    partitions: int = 3,
    bots: int = 24,
    servers: int = 6,
    days: int = 2,
    seed: int = 11,
    log: IO[str] | None = None,
) -> dict[str, Any]:
    """The cluster smoke drill (the ``cluster-smoke`` CLI verb).

    Exports a seeded trace, replays it through one daemon for
    reference, then (1) through a ``partitions``-wide cluster and (2)
    through a live 2→``partitions`` reshard at the stream's midpoint —
    demanding byte-identical merged landscapes both times.  Raises
    :class:`~repro.service.netingest.SmokeFailure` on any mismatch.
    """
    from ..cli import main as cli_main
    from .netingest import SmokeFailure

    log = log if log is not None else sys.stderr
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    trace = workdir / "trace.ndjson"
    if cli_main(
        [
            "export-trace",
            "--source", "sim",
            "--family", "murofet",
            "--bots", str(bots),
            "--servers", str(servers),
            "--days", str(days),
            "--seed", str(seed),
            "--out", str(trace),
        ]
    ):
        raise SmokeFailure("export-trace failed")
    reference = workdir / "reference.ndjson"
    if cli_main(
        ["replay", str(trace), "--out", str(reference), "--trace-sample", "0"]
    ):
        raise SmokeFailure("reference file replay failed")
    reference_bytes = reference.read_bytes()
    payload_lines = len(split_header(trace.read_bytes().splitlines())[1])

    flat_dir = workdir / "flat"
    flat = cluster_replay(
        trace, flat_dir, partitions=partitions, verify=False
    )
    if (flat_dir / "landscape.ndjson").read_bytes() != reference_bytes:
        raise SmokeFailure(
            f"{partitions}-partition merged landscape differs from the "
            "single-daemon replay"
        )
    print(
        f"cluster-smoke [flat]: {partitions} partitions, "
        f"{payload_lines} payload lines, byte-identical",
        file=log,
    )

    reshard_dir = workdir / "reshard"
    plan = [(2, payload_lines // 2), (partitions, None)]
    resharded = cluster_replay(trace, reshard_dir, plan=plan, verify=False)
    if (reshard_dir / "landscape.ndjson").read_bytes() != reference_bytes:
        raise SmokeFailure(
            f"2->{partitions} reshard merged landscape differs from the "
            "single-daemon replay"
        )
    print(
        f"cluster-smoke [reshard]: 2->{partitions} at line "
        f"{payload_lines // 2}, byte-identical",
        file=log,
    )

    report = {
        "schema": "botmeter-cluster-smoke-v1",
        "partitions": partitions,
        "payload_lines": payload_lines,
        "reference_bytes": len(reference_bytes),
        "flat": {"identical": True, "rows": flat["rows"]},
        "reshard": {
            "identical": True,
            "plan": [[n, end] for n, end in plan],
            "rows": resharded["rows"],
        },
    }
    (workdir / "smoke-report.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    return report
