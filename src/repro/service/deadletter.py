"""Dead-letter queue: an NDJSON sidecar of quarantined records.

Records the daemon cannot chart are not silently discarded — each one is
appended to the dead-letter file with a machine-readable reason code, so
an operator (or the soak test) can reconcile *exactly* what was lost and
why.  Two reason codes exist today:

* ``corrupt`` — the wire reader could not decode the line (invalid
  JSON, foreign version, missing fields, undecodable bytes);
* ``late`` — a decoded lookup matched a family but arrived after its
  epoch had already been emitted (displaced beyond the reorder horizon,
  or skewed across an epoch boundary).

Entries are one JSON object per line, deterministic key order, carrying
a monotonic ``seq`` so the file can be truncated to a checkpointed
length on crash recovery — the same crash-window discipline the
landscape output uses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Mapping

__all__ = ["DEADLETTER_SCHEMA", "DeadLetterQueue", "read_deadletters"]

DEADLETTER_SCHEMA = "botmeterd-deadletter-v1"

_COMPACT = {"sort_keys": True, "separators": (",", ":")}

#: Quarantined raw lines are clipped to this many characters.
MAX_LINE_SNIPPET = 500


class DeadLetterQueue:
    """Append-only NDJSON quarantine with per-reason counts.

    The writer is schema-parameterised so other durable NDJSON sidecars
    with the same append/flush/truncate discipline can reuse it — the
    cluster router's per-partition failover spool
    (:mod:`repro.service.meshguard`) tags its file
    ``botmeterd-spool-v1`` but is otherwise this exact format.
    """

    def __init__(self, path: str | Path, schema: str = DEADLETTER_SCHEMA) -> None:
        self.path = Path(path)
        self.schema = str(schema)
        self._fh: IO[str] | None = None
        self.entries = 0
        self.counts: dict[str, int] = {}

    def _handle(self) -> IO[str]:
        if self._fh is None:
            self._fh = open(self.path, "a")
        return self._fh

    def quarantine(self, reason: str, **fields: Any) -> None:
        """Append one entry; ``fields`` carry reason-specific detail."""
        entry = {
            "schema": self.schema,
            "seq": self.entries,
            "reason": reason,
            **fields,
        }
        fh = self._handle()
        fh.write(json.dumps(entry, **_COMPACT) + "\n")
        fh.flush()
        self.entries += 1
        self.counts[reason] = self.counts.get(reason, 0) + 1

    def reset(self) -> None:
        """Truncate the sidecar to empty (fresh, un-resumed run)."""
        self.close()
        self.path.write_text("")
        self.entries = 0
        self.counts = {}

    def truncate_to(self, entries: int, counts: Mapping[str, int]) -> None:
        """Drop entries a checkpoint never saw (crash-window recovery)."""
        self.close()
        if self.path.exists():
            kept = self.path.read_text().splitlines()[:entries]
            self.path.write_text("".join(line + "\n" for line in kept))
        self.entries = int(entries)
        self.counts = {reason: int(n) for reason, n in counts.items()}

    def export_state(self) -> dict[str, Any]:
        return {"entries": self.entries, "counts": dict(self.counts)}

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_deadletters(path: str | Path) -> list[dict[str, Any]]:
    """Parse a dead-letter sidecar back into entry dicts."""
    entries = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            entries.append(json.loads(line))
    return entries
