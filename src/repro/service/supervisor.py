"""Supervised recovery: health states, bounded backoff, restart loop.

The daemon's checkpoint machinery (PR 2) makes a *restart* cheap and
exact; this module decides *when* to restart and reports *how healthy*
the pipeline is while it runs:

* :class:`HealthMonitor` — a four-state machine
  (``healthy -> degraded -> stalled -> recovering``) driven by the
  quarantine fraction over a sliding record window, stall/failure
  events, and post-restart clean streaks.  The current state and every
  transition are published through the shared metrics registry
  (``botmeterd_health_state``, ``botmeterd_health_transitions_total``).
* :class:`BackoffPolicy` — bounded exponential backoff with
  *deterministic* seeded jitter, so two identical supervised runs
  compute identical delay schedules (the soak test's determinism
  criterion extends to the supervisor).
* :class:`Supervisor` — runs a daemon factory in a loop: hard faults
  (:class:`~repro.service.faults.InjectedFault`) and unexpected
  exceptions trigger backoff-then-restart from the last checkpoint, up
  to ``max_restarts``; injected fault sequence numbers are *disarmed*
  on restart (the upstream recovered), so the replayed schedule does
  not re-raise them.
"""

from __future__ import annotations

import enum
import json
import sys
import time
from collections import deque
from typing import IO, Any, Callable

from .faults import InjectedFault
from .metrics import Counter, Gauge, MetricsRegistry

__all__ = [
    "HealthState",
    "HealthMonitor",
    "BackoffPolicy",
    "Supervisor",
    "SupervisorGaveUp",
]


class SupervisorGaveUp(RuntimeError):
    """The restart budget ran out without the daemon completing."""


class HealthState(enum.Enum):
    """Coarse pipeline health, exported as a numeric gauge."""

    HEALTHY = 0
    DEGRADED = 1
    STALLED = 2
    RECOVERING = 3


class HealthMonitor:
    """Sliding-window health state machine.

    Args:
        window: number of recent records the quarantine fraction is
            computed over.
        degraded_threshold: quarantine fraction above which a healthy
            pipeline is marked degraded (hysteresis: it recovers only
            below half the threshold).
        recover_streak: clean records required after a restart before
            ``recovering`` promotes back to ``healthy``.
    """

    def __init__(
        self,
        window: int = 200,
        degraded_threshold: float = 0.05,
        recover_streak: int = 50,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0 < degraded_threshold < 1:
            raise ValueError("degraded_threshold must be in (0, 1)")
        self.window = window
        self.degraded_threshold = degraded_threshold
        self.recover_streak = recover_streak
        self.state = HealthState.HEALTHY
        self._recent: deque[int] = deque(maxlen=window)
        self._streak = 0
        self.transitions: list[tuple[str, str]] = []
        self._gauge: Gauge | None = None
        self._counter: Counter | None = None

    def bind(self, metrics: MetricsRegistry) -> None:
        """Publish through this registry (rebind after every restart —
        each daemon instance owns a fresh, checkpoint-restored one)."""
        self._gauge = metrics.gauge(
            "botmeterd_health_state",
            "Pipeline health: 0 healthy, 1 degraded, 2 stalled, 3 recovering.",
        )
        self._counter = metrics.counter(
            "botmeterd_health_transitions_total",
            "Health state machine transitions, labelled by entered state.",
        )
        self.publish()

    def publish(self) -> None:
        if self._gauge is not None:
            self._gauge.set(self.state.value)

    @property
    def quarantine_fraction(self) -> float:
        if not self._recent:
            return 0.0
        return sum(self._recent) / len(self._recent)

    def _transition(self, state: HealthState) -> None:
        if state is self.state:
            return
        self.transitions.append((self.state.name, state.name))
        self.state = state
        if self._counter is not None:
            self._counter.inc(state=state.name.lower())
        self.publish()

    def record_ok(self) -> None:
        """One record charted cleanly."""
        self._recent.append(0)
        self._streak += 1
        self._evaluate()

    def record_quarantined(self) -> None:
        """One record dead-lettered (corrupt or late)."""
        self._recent.append(1)
        self._streak = 0
        self._evaluate()

    def on_stall(self) -> None:
        """Ingest stopped making progress (watchdog or injected stall)."""
        self._transition(HealthState.STALLED)

    def on_failure(self) -> None:
        """The daemon died on an exception."""
        self._transition(HealthState.STALLED)

    def on_restart(self) -> None:
        """A supervised restart began; require a clean streak to promote."""
        self._streak = 0
        self._transition(HealthState.RECOVERING)

    def _evaluate(self) -> None:
        fraction = self.quarantine_fraction
        if self.state is HealthState.RECOVERING:
            if self._streak >= self.recover_streak:
                self._transition(
                    HealthState.DEGRADED
                    if fraction > self.degraded_threshold
                    else HealthState.HEALTHY
                )
        elif self.state is HealthState.HEALTHY:
            if fraction > self.degraded_threshold:
                self._transition(HealthState.DEGRADED)
        elif self.state is HealthState.DEGRADED:
            if fraction <= self.degraded_threshold / 2:
                self._transition(HealthState.HEALTHY)
        # STALLED only leaves via on_restart().


class BackoffPolicy:
    """Bounded exponential backoff with deterministic seeded jitter."""

    def __init__(
        self,
        base: float = 0.5,
        factor: float = 2.0,
        cap: float = 30.0,
        jitter: float = 0.1,
        seed: int = 0,
    ) -> None:
        if base < 0 or cap < base:
            raise ValueError("need 0 <= base <= cap")
        if not 0 <= jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        self.base = base
        self.factor = factor
        self.cap = cap
        self.jitter = jitter
        import random as _random

        self._rng = _random.Random(seed)

    def delay(self, attempt: int) -> float:
        """Backoff before restart ``attempt`` (0-based), jittered."""
        raw = min(self.cap, self.base * self.factor ** attempt)
        return raw * (1.0 + self.jitter * self._rng.random())


class Supervisor:
    """Run a daemon factory under restart supervision.

    Args:
        factory: ``factory(disarmed: set[int]) -> daemon`` — builds a
            fresh daemon per attempt.  The ``disarmed`` set carries the
            sequence numbers of injected hard faults already survived;
            the factory must hand it to the daemon's fault injector.
        max_restarts: restart budget; exhausting it raises
            :class:`SupervisorGaveUp`.
        backoff: delay policy between restarts.
        health: shared :class:`HealthMonitor` (one is created if
            omitted); it is re-bound to each daemon's metrics registry.
        sleep: injection point for the backoff sleep (tests and the
            soak pass a no-op to stay fast; delays are still computed
            and recorded).
        log_stream: JSON-lines event log, default stderr.
    """

    def __init__(
        self,
        factory: Callable[[set[int]], Any],
        max_restarts: int = 5,
        backoff: BackoffPolicy | None = None,
        health: HealthMonitor | None = None,
        sleep: Callable[[float], None] = time.sleep,
        log_stream: IO[str] | None = None,
    ) -> None:
        self.factory = factory
        self.max_restarts = max_restarts
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.health = health if health is not None else HealthMonitor()
        self._sleep = sleep
        self._log = log_stream if log_stream is not None else sys.stderr
        self.restarts = 0
        self.disarmed: set[int] = set()
        self.events: list[dict[str, Any]] = []
        self.daemon: Any = None

    def _log_event(self, event: str, **fields: Any) -> None:
        payload = {"event": event, **fields}
        self.events.append(payload)
        print(json.dumps(payload, sort_keys=True), file=self._log, flush=True)

    def run(self) -> int:
        """Supervise until the daemon completes; returns its exit code.

        Raises:
            SupervisorGaveUp: after ``max_restarts`` failed attempts.
        """
        while True:
            self.daemon = self.factory(set(self.disarmed))
            self.health.bind(self.daemon.metrics)
            try:
                code = self.daemon.run()
            except InjectedFault as exc:
                self._handle_failure(exc.kind, seq=exc.seq, message=str(exc))
                if exc.seq is not None:
                    self.disarmed.add(exc.seq)
            except Exception as exc:  # supervision boundary: restart, not die
                self._handle_failure("exception", message=f"{type(exc).__name__}: {exc}")
            else:
                self._log_event("supervisor_done", restarts=self.restarts, code=code)
                return code
            delay = self.backoff.delay(self.restarts)
            self.restarts += 1
            self._log_event("supervisor_restart", attempt=self.restarts, delay=delay)
            self._sleep(delay)
            self.health.on_restart()

    def _handle_failure(self, kind: str, **fields: Any) -> None:
        if kind == "stall":
            self.health.on_stall()
        else:
            self.health.on_failure()
        self._log_event("supervisor_caught", kind=kind, **fields)
        # Where did the failed attempt's wall-clock go?  The tracer's
        # per-stage accounting survives the exception, so log it before
        # the restart discards the daemon instance.
        tracer = getattr(self.daemon, "tracer", None)
        if tracer is not None:
            self._log_event("trace_summary", **tracer.summary())
        if self.restarts >= self.max_restarts:
            self._log_event("supervisor_gave_up", restarts=self.restarts)
            raise SupervisorGaveUp(
                f"daemon failed {self.restarts + 1} times "
                f"(budget {self.max_restarts}); last failure: {kind} {fields}"
            )
