"""Sharded ingest workers: the parallel half of the landscape engine.

The :class:`~repro.service.engine.ShardedLandscapeEngine` can spread its
``(family × server)`` shards over N worker *processes*.  The parent
routes every released record to exactly one worker with a deterministic
hash of its ``server`` field (:func:`worker_for_server`), so each worker
owns a disjoint subset of the shards and sees its records in released
(stream) order.  Ingest commands are fire-and-forget batches; workers
only speak when the parent reaches a *sync point* — an epoch emission,
a checkpoint export, or finalize — at which moment every buffered batch
has been flushed down the pipe first, so command ordering alone
guarantees the worker state is complete.

A sync reply carries everything the parent deferred: per-family matched
counts, late records (tagged with their parent-side dispatch sequence
number, so the merged late stream reproduces the serial engine's
dead-letter order exactly), closed ``(family, server, day)`` landscapes,
the estimator-fallback total and per-shard epoch cursors.  The parent
merges closures into the same per-day emission path the serial engine
uses — which is how the emitted NDJSON stays byte-identical at any
worker count.

Workers hold a process-local :class:`~repro.core.kernels.KernelCache`;
when the engine was given a spill path they warm from it at boot and
spill back at shutdown, so restarts skip the estimator-kernel warm-up.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.connection import Connection
from typing import Any, Mapping

from ..core.estimator import Estimator
from ..core.kernels import shared_cache
from ..core.streaming import StreamingBotMeter
from ..dga.base import Dga
from ..dns.message import ForwardedLookup
from ..timebase import Timeline

__all__ = [
    "WorkerConfig",
    "WorkerPool",
    "partition_for_server",
    "worker_for_server",
]

#: One record on the wire: ``(dispatch_seq, timestamp, server, domain)``.
RecordTuple = tuple[int, float, str, str]


@lru_cache(maxsize=65536)
def worker_for_server(server: str, n_workers: int) -> int:
    """Deterministic shard routing: stable across runs, platforms and
    restarts (CRC-32 is endianness-free and seedless, unlike ``hash``).

    Border traces repeat a small forwarding-server set per chunk, so the
    ``(server, n)`` decision is LRU-cached — the encode+CRC cost is paid
    once per distinct server, not once per record.  The cache is pure
    (keyed on its full input) and bounded, so a long-lived daemon that
    sees an adversarial server churn degrades to the uncached cost, never
    to unbounded memory.
    """
    return zlib.crc32(server.encode("utf-8")) % n_workers


def partition_for_server(server: str, n_partitions: int) -> int:
    """Cluster partition routing: the *same* CRC-32 keying as in-process
    worker routing, so a record lands in the same slice whether the
    split happens across partition processes (the cluster tier) or
    across ingest workers within one daemon — and a reshard from N
    partitions to M recomputes membership from the server name alone."""
    return worker_for_server(server, n_partitions)


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to rebuild the engine's shard factory."""

    dgas: Mapping[str, Dga]
    estimators: Mapping[str, Estimator]
    detection_windows: Mapping[str, Mapping[int, frozenset[str]]]
    negative_ttl: float
    timestamp_granularity: float
    timeline: Timeline
    grace: float
    kernel_spill: str | None = None
    #: Span sampling rate for worker-side estimate tracing; 0 disables.
    trace_sample: int = 0


class _WorkerState:
    """The worker-process side: shards plus deferred-stat accumulators."""

    def __init__(self, config: WorkerConfig) -> None:
        from .engine import _FamilyRouter  # worker-side import, no cycle at load

        self.config = config
        self.families = sorted(config.dgas)
        self.routers = {
            family: _FamilyRouter(
                dga, config.timeline, config.detection_windows.get(family)
            )
            for family, dga in config.dgas.items()
        }
        self.shards: dict[tuple[str, str], StreamingBotMeter] = {}
        self.cursor = 0  # the parent's next_epoch_to_emit, per latest batch
        self.closures: list[tuple[str, str, int, Any]] = []
        self.matched: dict[str, int] = {}
        self.late: list[tuple[int, tuple[float, str, str], int]] = []
        if config.trace_sample > 0:
            from .tracing import WorkerTraceBuffer

            self.trace: WorkerTraceBuffer | None = WorkerTraceBuffer(
                config.trace_sample
            )
        else:
            self.trace = None
        if config.kernel_spill:
            shared_cache().load(config.kernel_spill)
        for family in self.families:
            shared_cache().warm_family(config.dgas[family].params)

    def add_family(self, name: str, dga: Dga, estimator: Estimator) -> None:
        """Dynamic-registry onboarding, worker side (idempotent).

        ``WorkerConfig`` is frozen but its taxonomy mappings are plain
        dicts, so the registration mutates them in place — every later
        ``_shard`` build and routing pass sees the new family without a
        config reload.  Pipe ordering guarantees all records dispatched
        before the ``register`` op were ingested under the old taxonomy,
        matching the serial engine's routing exactly.
        """
        from .engine import _FamilyRouter  # worker-side import, no cycle at load

        if name in self.routers:
            return
        self.config.dgas[name] = dga
        self.config.estimators[name] = estimator
        self.families = sorted(self.config.dgas)
        self.routers[name] = _FamilyRouter(
            dga, self.config.timeline, self.config.detection_windows.get(name)
        )
        shared_cache().warm_family(dga.params)

    def _shard(self, family: str, server: str) -> StreamingBotMeter:
        key = (family, server)
        shard = self.shards.get(key)
        if shard is None:
            config = self.config
            shard = StreamingBotMeter(
                config.dgas[family],
                estimator=config.estimators[family],
                detection_windows=config.detection_windows.get(family),
                negative_ttl=config.negative_ttl,
                timestamp_granularity=config.timestamp_granularity,
                timeline=config.timeline,
                grace=config.grace,
                on_epoch=lambda day, landscape, _key=key: self.closures.append(
                    (_key[0], _key[1], day, landscape)
                ),
            )
            if self.cursor:
                shard.skip_to_epoch(self.cursor)
            self.shards[key] = shard
        return shard

    def ingest_batch(self, records: list[RecordTuple], cursor: int) -> None:
        self.cursor = cursor
        for seq, timestamp, server, domain in records:
            record = ForwardedLookup(timestamp, server, domain)
            for family in self.families:
                matched_day = self.routers[family].match_day(record)
                if matched_day is None:
                    continue
                self.matched[family] = self.matched.get(family, 0) + 1
                if matched_day < cursor:
                    self.late.append((seq, (timestamp, server, domain), matched_day))
                self._shard(family, server).ingest(record)

    def advance_all(self, timestamp: float) -> None:
        trace = self.trace
        if trace is None:
            for shard in self.shards.values():
                shard.advance_watermark(timestamp)
            return
        for (family, server), shard in self.shards.items():
            trace.time_shard(
                family, server, lambda s=shard: s.advance_watermark(timestamp)
            )

    def sync_payload(self) -> dict[str, Any]:
        """Drain the deferred stats (the reply to any sync command)."""
        payload = {
            "matched": self.matched,
            "late": self.late,
            "closures": self.closures,
            "failures": sum(
                shard.stats["estimate_failures"] for shard in self.shards.values()
            ),
            "cursors": [
                (family, server, shard.next_epoch_to_close)
                for (family, server), shard in sorted(self.shards.items())
            ],
            "trace": self.trace.ship() if self.trace is not None else None,
        }
        self.matched = {}
        self.late = []
        self.closures = []
        return payload

    def export_shards(self) -> list[list[Any]]:
        return [
            [family, server, shard.export_state()]
            for (family, server), shard in sorted(self.shards.items())
        ]

    def import_shards(self, shards: list[list[Any]], cursor: int) -> None:
        self.shards = {}
        self.closures = []
        self.matched = {}
        self.late = []
        self.cursor = int(cursor)
        for family, server, shard_state in shards:
            self._shard(family, server).import_state(shard_state)


def _worker_main(conn: Connection, config: WorkerConfig) -> None:
    state = _WorkerState(config)
    deferred_error: str | None = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent went away; nothing durable lives here
        op = message[0]
        if op == "stop":
            if config.kernel_spill:
                shared_cache().spill(config.kernel_spill)
            break
        try:
            if deferred_error is not None:
                raise RuntimeError(deferred_error)
            if op == "batch":
                state.ingest_batch(message[1], message[2])
            elif op == "register":
                state.add_family(message[1], message[2], message[3])
            elif op in ("close", "finalize"):
                state.advance_all(message[1])
                conn.send(state.sync_payload())
            elif op == "sync":
                conn.send(state.sync_payload())
            elif op == "export":
                payload = state.sync_payload()
                payload["shards"] = state.export_shards()
                conn.send(payload)
            elif op == "import":
                state.import_shards(message[1], message[2])
                payload = state.sync_payload()
                conn.send(payload)
            else:
                raise RuntimeError(f"unknown worker command {op!r}")
        except Exception as exc:  # pragma: no cover - defensive surface
            if op in ("batch", "register"):
                # Fire-and-forget: report at the next request instead.
                deferred_error = f"{type(exc).__name__}: {exc}"
            else:
                deferred_error = None
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
    conn.close()


class WorkerPool:
    """Parent-side handle on the N ingest-worker processes.

    Prefers the ``fork`` start method (cheap, and the config rides the
    fork instead of a pickle); falls back to ``spawn`` elsewhere — the
    config dataclass is picklable either way.
    """

    def __init__(
        self, config: WorkerConfig, n_workers: int, tracer: Any = None
    ) -> None:
        if n_workers < 2:
            raise ValueError("a worker pool needs at least 2 workers")
        self.n_workers = int(n_workers)
        self.tracer = tracer  # StageTracer or None; times per-worker drains
        method = "fork" if "fork" in get_all_start_methods() else "spawn"
        ctx = get_context(method)
        self._conns: list[Connection] = []
        self._procs = []
        for index in range(self.n_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, config),
                name=f"botmeterd-ingest-{index}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def worker_for(self, server: str) -> int:
        # worker_for_server is itself LRU-cached (bounded, unlike the
        # per-pool dict this replaced), so repeated servers skip the
        # encode+CRC entirely.
        return worker_for_server(server, self.n_workers)

    def send(self, index: int, message: tuple) -> None:
        """Fire-and-forget (``batch`` commands)."""
        self._conns[index].send(message)

    def _recv(self, index: int) -> dict[str, Any]:
        try:
            reply = self._conns[index].recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                f"ingest worker {index} died mid-request"
            ) from exc
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise RuntimeError(f"ingest worker {index} failed: {reply[1]}")
        return reply

    def _recv_timed(self, index: int) -> dict[str, Any]:
        """One reply, with the sync drain latency observed per worker."""
        tracer = self.tracer
        if tracer is None:
            return self._recv(index)
        t0 = time.perf_counter_ns()
        reply = self._recv(index)
        tracer.worker_drain(index, time.perf_counter_ns() - t0)
        return reply

    def request(self, message: tuple) -> list[dict[str, Any]]:
        """Send one command to every worker; replies in worker order."""
        for conn in self._conns:
            conn.send(message)
        return [self._recv_timed(index) for index in range(self.n_workers)]

    def request_each(self, messages: list[tuple]) -> list[dict[str, Any]]:
        """Per-worker commands (``import`` distribution), replies in order."""
        for conn, message in zip(self._conns, messages):
            conn.send(message)
        return [self._recv_timed(index) for index in range(self.n_workers)]

    def close(self) -> None:
        """Stop every worker (they spill their kernel caches first)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - hung-worker backstop
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []
