"""Bounded reorder buffer with explicit backpressure.

A real collector delivers the vantage-point stream *roughly* ordered:
parallel resolver threads, retransmissions and batching displace records
by seconds.  The daemon runs every record through this buffer — a
bounded min-heap keyed on the deterministic trace order
``(timestamp, server, domain)`` — so the downstream engine sees the
same order a sorted batch file would give, as long as displacement stays
within the buffer's capacity.

The buffer is the service's backpressure point.  When it is full, the
configured :class:`Backpressure` policy decides what happens:

* ``BLOCK`` — the oldest buffered record is *released* downstream
  (synchronously, this is the producer blocking until the consumer made
  room; nothing is ever lost);
* ``DROP_OLDEST`` — the oldest buffered record is *discarded* and
  counted, shedding load while keeping the freshest data.
"""

from __future__ import annotations

import enum
import heapq
from typing import Any

from ..dns.message import ForwardedLookup

__all__ = ["Backpressure", "ReorderBuffer"]


class Backpressure(enum.Enum):
    """What a full reorder buffer does with its oldest record."""

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"

    @classmethod
    def parse(cls, value: "Backpressure | str") -> "Backpressure":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            options = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown backpressure policy {value!r}; options: {options}"
            ) from None


class ReorderBuffer:
    """Min-heap that restores bounded-displacement stream order.

    Args:
        capacity: maximum records held; pushing past it triggers the
            backpressure policy.
        policy: :class:`Backpressure` (or its string value).

    Counters (all monotonic): ``reordered`` — records that arrived with
    a timestamp below the highest already seen; ``dropped`` — records
    shed by ``DROP_OLDEST``; ``released`` — records delivered
    downstream.
    """

    def __init__(
        self, capacity: int = 1024, policy: Backpressure | str = Backpressure.BLOCK
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.policy = Backpressure.parse(policy)
        self._heap: list[tuple[float, str, str, int, ForwardedLookup]] = []
        self._seq = 0  # tie-break for duplicate (t, s, d) records
        self._max_seen = float("-inf")
        self.reordered = 0
        self.dropped = 0
        self.released = 0
        #: Optional StageTracer; when set, every push is a sampled
        #: ``reorder`` span (never checkpointed — purely observational).
        self.tracer: Any = None

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def depth(self) -> int:
        """Records currently buffered."""
        return len(self._heap)

    @property
    def max_seen(self) -> float:
        """Highest timestamp ever pushed — buffered records included.

        Two invariants hang off this bound: every record still in the
        heap has a timestamp ``<= max_seen``, and the downstream
        watermark only advances on *released* records, so
        ``watermark <= max_seen`` always.  The engine's columnar fast
        path uses it to prove that a whole frame cannot trigger an epoch
        emission before pushing a single record — which is what makes
        batching the per-record emission check safe."""
        return self._max_seen

    @property
    def saturated(self) -> bool:
        """Whether the buffer is at capacity — the next push triggers
        the backpressure policy.  Upstream tiers (the network ingest
        server) poll this to pause reads instead of pushing into a
        policy decision."""
        return len(self._heap) >= self.capacity

    def _pop(self) -> ForwardedLookup:
        return heapq.heappop(self._heap)[4]

    def push(self, record: ForwardedLookup) -> list[ForwardedLookup]:
        """Buffer one record; return the records this push released."""
        tracer = self.tracer
        if tracer is None:
            return self._push(record)
        t0 = tracer.start("reorder")
        released = self._push(record)
        if t0:
            tracer.stop("reorder", t0, records=len(released))
        return released

    def _push(self, record: ForwardedLookup) -> list[ForwardedLookup]:
        if record.timestamp < self._max_seen:
            self.reordered += 1
        else:
            self._max_seen = record.timestamp
        heapq.heappush(
            self._heap,
            (record.timestamp, record.server, record.domain, self._seq, record),
        )
        self._seq += 1
        released: list[ForwardedLookup] = []
        while len(self._heap) > self.capacity:
            oldest = self._pop()
            if self.policy is Backpressure.BLOCK:
                released.append(oldest)
            else:
                self.dropped += 1
        self.released += len(released)
        return released

    def flush(self) -> list[ForwardedLookup]:
        """Release everything still buffered, in order (stream end)."""
        released = []
        while self._heap:
            released.append(self._pop())
        self.released += len(released)
        return released

    # -- checkpointing -------------------------------------------------------

    def export_state(self) -> dict[str, Any]:
        """JSON-serialisable snapshot (contents, cursor, counters)."""
        contents = [item[4] for item in sorted(self._heap)]
        return {
            "capacity": self.capacity,
            "policy": self.policy.value,
            "max_seen": None if self._max_seen == float("-inf") else self._max_seen,
            "contents": [r.to_dict() for r in contents],
            "reordered": self.reordered,
            "dropped": self.dropped,
            "released": self.released,
        }

    def import_state(self, state: dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self.capacity = int(state["capacity"])
        self.policy = Backpressure.parse(state["policy"])
        max_seen = state["max_seen"]
        self._max_seen = float("-inf") if max_seen is None else float(max_seen)
        self._heap = []
        self._seq = 0
        for data in state["contents"]:
            record = ForwardedLookup.from_dict(data)
            heapq.heappush(
                self._heap,
                (record.timestamp, record.server, record.domain, self._seq, record),
            )
            self._seq += 1
        self.reordered = int(state["reordered"])
        self.dropped = int(state["dropped"])
        self.released = int(state["released"])
