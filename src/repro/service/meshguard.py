"""Meshguard — fault tolerance for the Chartmesh cluster tier.

Chartmesh (:mod:`repro.service.cluster`) proves the *exactness* story:
N partition daemons whose merged landscape is byte-identical to one
unpartitioned daemon.  This module makes that cluster survive the
partitions actually failing, without giving up the exactness anchor:

* **Partition supervision** — :class:`ClusterSupervisor` owns N
  ``run_partition_server`` *processes* (one ingest socket + one daemon +
  one :class:`HeartbeatWriter` each).  Every poll tick reads the
  per-partition heartbeat file (atomically rotated JSON: pid, watermark,
  cursor, checkpoint age), checks process liveness, and drives a
  four-state :class:`PartitionHealth` machine
  (``healthy -> lagging -> down -> disarmed``).  A dead or wedged
  partition is restarted from **its own checkpoint** with seeded-jitter
  exponential backoff (:class:`~repro.service.supervisor.BackoffPolicy`
  — two identical runs compute identical delay schedules); a partition
  that exhausts ``max_partition_restarts`` is *disarmed* and the cluster
  degrades instead of flapping.

* **Router failover** — :class:`FailoverSensorStream` wraps the
  router's per-partition :class:`~repro.service.netingest.SensorStream`.
  Lines routed to a down partition are retained in memory *and*
  persisted to a durable per-partition NDJSON **spool** (the
  dead-letter writer with schema ``botmeterd-spool-v1``), then replayed
  in order on reconnect.  Replay rides the partition's own welcome
  cursor and the stream's absolute line positions, so byte-identity of
  the final merge is preserved: a replayed line is exactly the line the
  unfailed cluster would have delivered, in the same position.

* **Quorum-degraded merge** — while partitions are down,
  :func:`repro.service.cluster.merge_landscape_rows` (given the
  supervisor's ``partition_status``) still emits rows for epochs every
  fresh partition has closed, marked
  ``quality.degraded_partitions`` and carrying a confidence interval
  widened by the down partitions' last-known census share
  (:func:`repro.core.confidence.widen_for_loss`).  Once the partition
  recovers and its spool drains, the exact rows are re-emitted flagged
  ``restated`` (:func:`repro.service.cluster.restate_rows`).

* **Chaos drills** — :func:`run_cluster_chaos` runs the whole story
  end to end under a *seeded, deterministic* fault schedule: SIGKILL
  and SIGSTOP each partition mid-stream at fixed payload-line offsets,
  assert zero record loss (final merge byte-identical to the
  single-daemon replay), exact spool <-> ledger reconciliation, CI
  containment for every degraded row, and (with ``runs=2``) that the
  same fault seed reproduces identical spools, restart ledgers and
  degraded/restated row sequences.

Determinism discipline: faults fire at payload-line *counts*, never at
wall-clock times; the drill pins a partition's durable frontier with
the Sensornet ``sync`` barrier before killing it, so the spool holds
exactly the lines routed during the outage window; ledger entries
carry only seed-derived fields (partition, attempt, backoff delay,
reason).
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from collections import deque
from multiprocessing import get_all_start_methods, get_context
from pathlib import Path
from typing import IO, Any, Callable, Mapping, Sequence

from .cluster import (
    ClusterError,
    merge_landscape_rows,
    restate_rows,
    route_line,
    single_daemon_replay,
    split_header,
)
from .daemon import BotMeterDaemon
from .deadletter import DeadLetterQueue, read_deadletters
from .metrics import MetricsRegistry
from .netingest import NetIngestServer, SensorError, SensorStream
from .supervisor import BackoffPolicy

__all__ = [
    "HEARTBEAT_SCHEMA",
    "SPOOL_SCHEMA",
    "MESH_LEDGER_SCHEMA",
    "PartitionHealth",
    "HeartbeatWriter",
    "ClusterSupervisor",
    "FailoverSensorStream",
    "write_heartbeat",
    "read_heartbeat",
    "read_spool",
    "partition_states_from_heartbeats",
    "emission_lines",
    "chaos_schedule",
    "run_cluster_chaos",
    "run_partition_server",
]

HEARTBEAT_SCHEMA = "botmeterd-heartbeat-v1"
SPOOL_SCHEMA = "botmeterd-spool-v1"
MESH_LEDGER_SCHEMA = "botmeterd-mesh-ledger-v1"

#: Partition health states (string-valued for JSON/ledger friendliness;
#: the metrics gauge exports the numeric rank).
HEALTHY = "healthy"
LAGGING = "lagging"
DOWN = "down"
DISARMED = "disarmed"

STATE_RANK = {HEALTHY: 0, LAGGING: 1, DOWN: 2, DISARMED: 3}

#: States whose durable state can be trusted as current (reshard gate,
#: quorum counting).
FRESH_STATES = frozenset({HEALTHY, LAGGING})


# ---------------------------------------------------------------------------
# Heartbeats
# ---------------------------------------------------------------------------


def write_heartbeat(
    path: str | Path,
    *,
    pid: int,
    seq: int,
    watermark: float | None,
    cursor: int,
    records_consumed: int,
    checkpoint_age: float | None,
    clock: Callable[[], float] = time.monotonic,
) -> None:
    """Atomically rotate one partition heartbeat file.

    ``mono`` is the system-wide monotonic clock (comparable across
    processes on Linux — the supervisor subtracts it from its own
    reading to get the heartbeat's age); ``wall`` is informational only
    and never feeds a decision.
    """
    path = Path(path)
    document = {
        "schema": HEARTBEAT_SCHEMA,
        "pid": int(pid),
        "seq": int(seq),
        "watermark": watermark,
        "cursor": int(cursor),
        "records_consumed": int(records_consumed),
        "checkpoint_age": checkpoint_age,
        "mono": clock(),
        "wall": time.time(),
    }
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    with open(tmp, "w") as fh:
        fh.write(json.dumps(document, sort_keys=True))
        fh.flush()
    os.replace(tmp, path)


def read_heartbeat(path: str | Path) -> dict[str, Any] | None:
    """Parse a heartbeat file; ``None`` on missing/torn/foreign content
    (a heartbeat is advisory — a bad one reads as *no* heartbeat)."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or document.get("schema") != HEARTBEAT_SCHEMA:
        return None
    return document


class HeartbeatWriter(threading.Thread):
    """Daemon thread beating one partition's heartbeat file.

    Reads the live daemon's watermark / consumed counters without
    locking — heartbeats are advisory freshness signals, and a torn
    *value* (never a torn file: writes are atomic) only mis-ages one
    beat.  The checkpoint age rides
    :meth:`~repro.service.checkpoint.CheckpointStore.last_good_generation`,
    so the heartbeat and the lag detector share one staleness
    definition.
    """

    def __init__(
        self,
        daemon: Any,
        path: str | Path,
        interval: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(name=f"heartbeat-{Path(path).name}", daemon=True)
        self._daemon = daemon
        self._path = Path(path)
        self._interval = max(0.01, float(interval))
        self._clock = clock
        self._stop = threading.Event()
        self._seq = 0

    def beat_once(self) -> None:
        engine = getattr(self._daemon, "engine", None)
        store = getattr(self._daemon, "store", None)
        watermark = getattr(engine, "watermark", None) if engine is not None else None
        if watermark is not None and watermark == float("-inf"):
            watermark = None
        write_heartbeat(
            self._path,
            pid=os.getpid(),
            seq=self._seq,
            watermark=watermark,
            cursor=int(getattr(self._daemon, "records_consumed", 0) or 0),
            records_consumed=int(getattr(self._daemon, "records_consumed", 0) or 0),
            checkpoint_age=(
                store.last_good_generation() if store is not None else None
            ),
            clock=self._clock,
        )
        self._seq += 1

    def run(self) -> None:
        while not self._stop.is_set():
            try:
                self.beat_once()
            except OSError:
                pass  # a missed beat is a late heartbeat, not a crash
            self._stop.wait(self._interval)

    def stop(self) -> None:
        self._stop.set()


def partition_states_from_heartbeats(
    paths: Sequence[str | Path],
    *,
    lag_after: float = 5.0,
    down_after: float = 15.0,
    clock: Callable[[], float] = time.monotonic,
) -> list[str]:
    """Classify partitions by heartbeat age alone (no process handle).

    The offline gate for operations that must not run against stale
    partition state — ``reshard`` refuses when any partition reads
    ``down`` here.
    """
    now = clock()
    states: list[str] = []
    for path in paths:
        heartbeat = read_heartbeat(path)
        if heartbeat is None:
            states.append(DOWN)
            continue
        age = now - float(heartbeat.get("mono", 0.0))
        if age >= down_after:
            states.append(DOWN)
        elif age >= lag_after:
            states.append(LAGGING)
        else:
            states.append(HEALTHY)
    return states


# ---------------------------------------------------------------------------
# Per-partition health machine
# ---------------------------------------------------------------------------


class PartitionHealth:
    """Four-state partition health driven by discrete supervision ticks.

    Each :meth:`tick` classifies one observation — ``fresh`` (heartbeat
    young, process alive), ``stale`` (heartbeat older than
    ``lag_after``), ``dead`` (process gone, or heartbeat older than
    ``down_after``) — and advances::

        healthy --stale--> lagging --dead--> down
        healthy --dead--------------------> down
        lagging/down --fresh x recover_ticks--> healthy
        any --disarm()--> disarmed   (absorbing)

    Recovery demands ``recover_ticks`` *consecutive* fresh observations
    (hysteresis: one lucky heartbeat after a wedge does not clear the
    state).  All timing is injected — ticks carry the heartbeat age, so
    tests drive boundaries without sleeping.
    """

    def __init__(
        self,
        *,
        lag_after: float = 5.0,
        down_after: float = 15.0,
        recover_ticks: int = 2,
    ) -> None:
        if not 0 < lag_after <= down_after:
            raise ValueError("need 0 < lag_after <= down_after")
        if recover_ticks < 1:
            raise ValueError("recover_ticks must be >= 1")
        self.lag_after = float(lag_after)
        self.down_after = float(down_after)
        self.recover_ticks = int(recover_ticks)
        self.state = HEALTHY
        self.ticks = 0
        self._fresh_streak = 0
        self.transitions: list[tuple[int, str, str]] = []

    def _transition(self, state: str) -> None:
        if state != self.state:
            self.transitions.append((self.ticks, self.state, state))
            self.state = state

    def classify(self, heartbeat_age: float | None, process_alive: bool) -> str:
        """One observation's sample: ``fresh`` / ``stale`` / ``dead``."""
        if not process_alive:
            return "dead"
        if heartbeat_age is None or heartbeat_age >= self.down_after:
            return "dead" if heartbeat_age is not None else "stale"
        if heartbeat_age >= self.lag_after:
            return "stale"
        return "fresh"

    def tick(self, heartbeat_age: float | None, process_alive: bool) -> str:
        """Advance one supervision tick; returns the new state."""
        self.ticks += 1
        if self.state == DISARMED:
            return self.state
        sample = self.classify(heartbeat_age, process_alive)
        if sample == "fresh":
            self._fresh_streak += 1
            if self.state != HEALTHY and self._fresh_streak >= self.recover_ticks:
                self._transition(HEALTHY)
        else:
            self._fresh_streak = 0
            if sample == "dead":
                self._transition(DOWN)
            elif self.state == HEALTHY:
                self._transition(LAGGING)
        return self.state

    def disarm(self) -> None:
        """Hard-fault latch: the restart budget ran out."""
        self.ticks += 1
        self._transition(DISARMED)


# ---------------------------------------------------------------------------
# The partition server process
# ---------------------------------------------------------------------------


def run_partition_server(config: Mapping[str, Any]) -> int:
    """One supervised partition: daemon + UDS ingest server + heartbeat.

    The config is all primitives (it crosses a process boundary).  The
    daemon checkpoints to a *stable* per-partition path, so a restarted
    attempt resumes exactly where the killed one was durable; the
    ingest server unlinks and rebinds the same socket path, so the
    router's failover stream reconnects to a constant address.
    """
    log_path = config.get("log")
    log = open(log_path, "a") if log_path else open(os.devnull, "w")
    heartbeat: HeartbeatWriter | None = None
    try:
        daemon = BotMeterDaemon(
            config["input"],
            out_path=config["out"],
            checkpoint_path=config["checkpoint"],
            estimator=config.get("estimator", "auto"),
            grace=config.get("grace", 900.0),
            reorder_capacity=config.get("reorder_capacity", 1024),
            checkpoint_every=config.get("checkpoint_every", 500),
            batch_lines=config.get("batch_lines", 256),
            trace_out=config.get("trace_out"),
            trace_sample=config.get("trace_sample", 0),
            log_stream=log,
        )
        server = NetIngestServer(daemon, uds=config["uds"], expect_sensors=1)
        heartbeat = HeartbeatWriter(
            daemon,
            config["heartbeat"],
            interval=config.get("heartbeat_interval", 0.25),
        )
        heartbeat.start()
        return server.serve()
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        log.close()


def _partition_server_main(config: Mapping[str, Any]) -> None:
    sys.exit(run_partition_server(config))


# ---------------------------------------------------------------------------
# The cluster supervisor
# ---------------------------------------------------------------------------


class _Partition:
    """Supervisor-side handle for one partition process."""

    def __init__(self, index: int, config: dict[str, Any], health: PartitionHealth):
        self.index = index
        self.label = f"p{index:02d}"
        self.config = config
        self.health = health
        self.proc: Any = None
        self.restarts = 0


class ClusterSupervisor:
    """Own N partition server processes; watch, restart, disarm.

    Generalizes the single-daemon :class:`~repro.service.supervisor.
    Supervisor` to the cluster: one seeded :class:`BackoffPolicy` is
    shared across partitions (so the *sequence* of restart delays is a
    pure function of the seed and the fault order), each partition
    restarts from its own checkpoint, and a partition that exhausts
    ``max_partition_restarts`` is disarmed rather than retried forever.
    Every restart appends a ledger entry ``{partition, attempt, delay,
    reason}`` — deliberately wall-clock-free, so two runs under the
    same fault schedule produce byte-identical ledgers.

    ``sleep`` is the backoff injection point (drills pass a no-op; the
    computed delay is still recorded), ``clock`` feeds heartbeat aging.
    """

    def __init__(
        self,
        workdir: str | Path,
        partitions: int,
        *,
        estimator: Any = "auto",
        grace: float = 900.0,
        reorder_capacity: int = 1024,
        batch_lines: int = 256,
        checkpoint_every: int = 500,
        trace_sample: int = 0,
        max_partition_restarts: int = 3,
        backoff: BackoffPolicy | None = None,
        heartbeat_interval: float = 0.25,
        lag_after: float = 5.0,
        down_after: float = 15.0,
        recover_ticks: int = 2,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        log_stream: IO[str] | None = None,
    ) -> None:
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        n = int(partitions)
        if n < 1:
            raise ClusterError(f"cannot supervise {n} partitions")
        self.max_partition_restarts = int(max_partition_restarts)
        self._backoff = backoff if backoff is not None else BackoffPolicy(base=0.2, cap=5.0)
        self._clock = clock
        self._sleep = sleep
        self._log = log_stream if log_stream is not None else sys.stderr
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._g_health = self.metrics.gauge(
            "botmeterd_mesh_partition_health",
            "Partition health: 0 healthy, 1 lagging, 2 down, 3 disarmed.",
        )
        self._c_restarts = self.metrics.counter(
            "botmeterd_mesh_restarts_total",
            "Supervised partition restarts, labelled by reason.",
        )
        self._g_quorum = self.metrics.gauge(
            "botmeterd_mesh_quorum_ok",
            "1 while at least a quorum of partitions is fresh, else 0.",
        )
        #: Deterministic restart ledger (no wall-clock fields).
        self.ledger: list[dict[str, Any]] = []
        method = "fork" if "fork" in get_all_start_methods() else "spawn"
        self._ctx = get_context(method)
        self.partitions: list[_Partition] = []
        for i in range(n):
            config = {
                "label": f"p{i:02d}",
                "input": f"mesh:p{i:02d}",
                "out": str(self.workdir / f"p{i:02d}.out.ndjson"),
                "checkpoint": str(self.workdir / f"p{i:02d}.ck.json"),
                "uds": str(self.workdir / f"p{i:02d}.sock"),
                "heartbeat": str(self.workdir / f"p{i:02d}.hb.json"),
                "estimator": estimator,
                "grace": grace,
                "reorder_capacity": reorder_capacity,
                "batch_lines": batch_lines,
                "checkpoint_every": checkpoint_every,
                "trace_sample": trace_sample,
                "trace_out": (
                    str(self.workdir / f"p{i:02d}.trace.ndjson")
                    if trace_sample > 0
                    else None
                ),
                "heartbeat_interval": heartbeat_interval,
            }
            health = PartitionHealth(
                lag_after=lag_after,
                down_after=down_after,
                recover_ticks=recover_ticks,
            )
            self.partitions.append(_Partition(i, config, health))

    # -- lifecycle -----------------------------------------------------------

    def _log_event(self, event: str, **fields: Any) -> None:
        print(
            json.dumps({"event": event, **fields}, sort_keys=True),
            file=self._log,
            flush=True,
        )

    def _spawn(self, part: _Partition) -> None:
        proc = self._ctx.Process(
            target=_partition_server_main,
            args=(dict(part.config),),
            name=f"botmeterd-mesh-{part.label}",
        )
        proc.start()
        part.proc = proc

    def start(self) -> None:
        for part in self.partitions:
            self._spawn(part)

    def socket_path(self, index: int) -> str:
        return self.partitions[index].config["uds"]

    def heartbeat_path(self, index: int) -> str:
        return self.partitions[index].config["heartbeat"]

    def wait_ready(self, timeout: float = 30.0, index: int | None = None) -> None:
        """Block until the partition ingest socket(s) are bound."""
        targets = (
            [self.partitions[index]] if index is not None else list(self.partitions)
        )
        deadline = time.monotonic() + timeout
        for part in targets:
            while not os.path.exists(part.config["uds"]):
                if part.proc is not None and part.proc.exitcode not in (None, 0):
                    raise ClusterError(
                        f"partition {part.label} exited with "
                        f"{part.proc.exitcode} before binding its socket"
                    )
                if time.monotonic() >= deadline:
                    raise ClusterError(
                        f"partition {part.label} never bound {part.config['uds']}"
                    )
                time.sleep(0.01)

    def is_alive(self, index: int) -> bool:
        proc = self.partitions[index].proc
        return proc is not None and proc.is_alive()

    def kill(self, index: int, *, wedge: bool = False) -> None:
        """Drill hook: SIGKILL (default) or SIGSTOP (``wedge``) one
        partition process."""
        proc = self.partitions[index].proc
        if proc is None or proc.pid is None:
            raise ClusterError(f"partition {index} has no process to kill")
        os.kill(proc.pid, signal.SIGSTOP if wedge else signal.SIGKILL)
        if not wedge:
            proc.join(timeout=10)

    # -- supervision ---------------------------------------------------------

    def poll(self) -> dict[str, str]:
        """One supervision tick over every partition.

        Reads heartbeats, ticks each health machine, restarts partitions
        that are dead (process exited) or wedged (heartbeat past
        ``down_after`` while the process lives — those are killed
        first), and disarms past the restart budget.  Returns the
        post-tick state map.
        """
        now = self._clock()
        states: dict[str, str] = {}
        for part in self.partitions:
            alive = part.proc is not None and part.proc.is_alive()
            heartbeat = read_heartbeat(part.config["heartbeat"])
            age = (
                now - float(heartbeat["mono"])
                if heartbeat is not None and "mono" in heartbeat
                else None
            )
            if (
                not alive
                and part.proc is not None
                and part.proc.exitcode == 0
            ):
                # A clean zero exit is a quiesce (the partition finished
                # its stream), never a fault: restarting it would race
                # the router's own shutdown.
                states[part.label] = part.health.state
                self._g_health.set(
                    STATE_RANK[part.health.state], partition=part.label
                )
                continue
            sample = part.health.classify(age, alive)
            state = part.health.tick(age, alive)
            # Restart on the *observation*, not the state: a restarted
            # partition stays DOWN until its recovery streak completes,
            # and killing it again for that would be a flap loop.
            if state != DISARMED and (
                not alive or (sample == "dead" and age is not None)
            ):
                self._restart(part, "exit" if not alive else "stale")
                state = part.health.state
            states[part.label] = state
            self._g_health.set(STATE_RANK[state], partition=part.label)
        return states

    def _restart(self, part: _Partition, reason: str) -> None:
        part.restarts += 1
        self._c_restarts.inc(reason=reason)
        if part.restarts > self.max_partition_restarts:
            part.health.disarm()
            self.ledger.append(
                {
                    "partition": part.index,
                    "attempt": part.restarts,
                    "reason": reason,
                    "disarmed": True,
                }
            )
            self._log_event(
                "mesh_partition_disarmed", partition=part.label, reason=reason
            )
            return
        if part.proc is not None and part.proc.is_alive():
            # Wedged, not dead: put it down before bringing it back.
            os.kill(part.proc.pid, signal.SIGKILL)
            part.proc.join(timeout=10)
        delay = self._backoff.delay(part.restarts - 1)
        self.ledger.append(
            {
                "partition": part.index,
                "attempt": part.restarts,
                "delay": round(delay, 6),
                "reason": reason,
            }
        )
        self._log_event(
            "mesh_partition_restart",
            partition=part.label,
            attempt=part.restarts,
            delay=round(delay, 6),
            reason=reason,
        )
        self._sleep(delay)
        self._spawn(part)

    def partition_status(self) -> dict[str, dict[str, Any]]:
        """Per-partition state snapshot (feeds the degraded merge and
        the reshard gate)."""
        status: dict[str, dict[str, Any]] = {}
        for part in self.partitions:
            heartbeat = read_heartbeat(part.config["heartbeat"])
            status[part.label] = {
                "state": part.health.state,
                "restarts": part.restarts,
                "pid": part.proc.pid if part.proc is not None else None,
                "watermark": heartbeat.get("watermark") if heartbeat else None,
                "cursor": heartbeat.get("cursor") if heartbeat else None,
            }
        return status

    def states(self) -> list[str]:
        return [part.health.state for part in self.partitions]

    def quorum_ok(self, quorum: int | None = None) -> bool:
        if quorum is None:
            quorum = len(self.partitions) // 2 + 1
        fresh = sum(1 for s in self.states() if s in FRESH_STATES)
        ok = fresh >= quorum
        self._g_quorum.set(1 if ok else 0)
        return ok

    def wait(self, timeout: float = 60.0) -> list[int | None]:
        """Join every partition process; returns their exit codes."""
        codes: list[int | None] = []
        for part in self.partitions:
            if part.proc is not None:
                part.proc.join(timeout=timeout)
                codes.append(part.proc.exitcode)
            else:
                codes.append(None)
        return codes

    def stop(self) -> None:
        """Hard-stop every still-running partition (teardown path)."""
        for part in self.partitions:
            proc = part.proc
            if proc is not None and proc.is_alive():
                # A SIGSTOPped process is "alive"; SIGKILL takes both.
                try:
                    os.kill(proc.pid, signal.SIGKILL)
                except (OSError, TypeError):
                    pass
                proc.join(timeout=10)


# ---------------------------------------------------------------------------
# Router failover stream
# ---------------------------------------------------------------------------


class FailoverSensorStream:
    """A :class:`SensorStream` that survives its backend dying.

    Wraps one per-partition router stream with three behaviours:

    * **Retained window.**  Every line offered past the welcome cursor
      is retained (seq, bytes) until an ack proves it durable — the
      replay source for reconnects.
    * **Durable spool.**  On failover the retained window is dumped to
      a per-partition NDJSON spool (reason ``failover``) and every
      subsequent line routed here while down is appended (reason
      ``spooled``) — an append-only audit that survives a router crash
      and reconciles exactly against the drill's expected outage lines.
    * **Ordered replay.**  On reconnect the pending window replays
      through the partition's own welcome-cursor dedupe: the new inner
      stream is primed at the durable frontier, so absolute positions
      line up and the merged landscape stays byte-identical.

    Reconnects are gated: ``reconnect_gate`` (drills pass a line-count
    driven callable) or, by default, a seeded-backoff clock gate.
    ``sync``/``finish`` block on reconnection — they are the barriers
    that must not complete while lines are only spooled.
    """

    def __init__(
        self,
        address: Any,
        sensor: str,
        *,
        spool_path: str | Path,
        metrics: MetricsRegistry | None = None,
        tracer: Any = None,
        backoff: BackoffPolicy | None = None,
        reconnect_gate: Callable[[], bool] | None = None,
        clock: Callable[[], float] = time.monotonic,
        retry_deadline: float = 30.0,
        retry_interval: float = 0.02,
        connect_timeout: float = 5.0,
        io_timeout: float = 30.0,
        chunk_bytes: int = 1 << 15,
    ) -> None:
        self._address = address
        self.sensor = sensor
        self.spool = DeadLetterQueue(spool_path, schema=SPOOL_SCHEMA)
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._chunk_bytes = chunk_bytes
        self._clock = clock
        self.retry_deadline = retry_deadline
        self.retry_interval = retry_interval
        self._backoff = backoff if backoff is not None else BackoffPolicy(
            base=0.05, cap=2.0
        )
        self._gate = reconnect_gate
        self._next_attempt = 0.0
        self._attempts = 0
        self.tracer = tracer
        #: Absolute lines offered (== the partition's replay cursor).
        self.cursor = 0
        self.down = False
        self.failovers = 0
        self.spooled = 0
        self.replayed = 0
        self._acked = 0
        self._pending: deque[tuple[int, bytes]] = deque()
        self._spool_backlog = 0
        self._inner: SensorStream | None = None
        self._finished = False
        registry = metrics if metrics is not None else MetricsRegistry()
        self._g_depth = registry.gauge(
            "botmeterd_mesh_spool_depth",
            "Lines spooled for a down partition and not yet replayed.",
        )
        self._c_failovers = registry.counter(
            "botmeterd_mesh_failovers_total",
            "Partition stream failovers (backend marked down).",
        )
        self._c_spooled = registry.counter(
            "botmeterd_mesh_spooled_lines_total",
            "Lines persisted to a partition failover spool.",
        )
        self._c_replayed = registry.counter(
            "botmeterd_mesh_replayed_lines_total",
            "Spooled/retained lines replayed to a recovered partition.",
        )

    # -- state ---------------------------------------------------------------

    @property
    def acked(self) -> int:
        return self._acked

    def _observe_acks(self) -> None:
        if self._inner is not None:
            self._acked = max(self._acked, self._inner.acked)
        while self._pending and self._pending[0][0] <= self._acked:
            self._pending.popleft()

    def _spool_line(self, seq: int, line: bytes, reason: str) -> None:
        self.spool.quarantine(
            reason, cursor=seq, line=line.decode("utf-8", "replace")
        )
        self.spooled += 1
        self._spool_backlog += 1
        self._c_spooled.inc(partition=self.sensor)
        self._g_depth.set(self._spool_backlog, partition=self.sensor)

    def force_down(self, reason: str = "forced") -> None:
        """Mark the backend down *now* (drills call this right after the
        kill, so no send ever races a dying socket)."""
        if self.down:
            return
        self.down = True
        self.failovers += 1
        self._attempts = 0
        self._next_attempt = self._clock() + self._backoff.delay(0)
        self._c_failovers.inc(partition=self.sensor)
        t0 = self.tracer.start("failover") if self.tracer is not None else 0
        # The retained (sent-but-unacked) window goes to the spool first:
        # if the router itself dies while this partition is down, the
        # spool alone reconstructs everything undelivered.
        for seq, line in self._pending:
            self._spool_line(seq, line, "failover")
        if self._inner is not None:
            self._inner.close()
            self._inner = None
        if t0 and self.tracer is not None:
            self.tracer.stop(
                "failover", t0, records=len(self._pending), sensor=self.sensor
            )

    # -- connection management ----------------------------------------------

    def connect(self) -> int:
        """Initial connect; returns the welcome (resume) cursor."""
        return self._open()

    def _open(self) -> int:
        inner = SensorStream(
            self._address,
            self.sensor,
            connect_timeout=self._connect_timeout,
            io_timeout=self._io_timeout,
            chunk_bytes=self._chunk_bytes,
        )
        start = inner.connect()
        # The welcome cursor is the same trust anchor SensorStream's
        # resume="welcome" uses: lines at or below it are the backend's
        # own released state and must not be re-buffered.
        self._acked = max(self._acked, start)
        while self._pending and self._pending[0][0] <= self._acked:
            self._pending.popleft()
        inner.cursor = self._acked
        replayed = 0
        if self._pending:
            t0 = self.tracer.start("replay") if self.tracer is not None else 0
            inner.send_lines([line for _, line in self._pending])
            inner.flush()
            replayed = len(self._pending)
            if t0 and self.tracer is not None:
                self.tracer.stop("replay", t0, records=replayed, sensor=self.sensor)
        self._inner = inner
        self.down = False
        self._attempts = 0
        if replayed:
            self.replayed += replayed
            self._c_replayed.inc(replayed, partition=self.sensor)
        self._spool_backlog = 0
        self._g_depth.set(0, partition=self.sensor)
        self._observe_acks()
        return start

    def reconnect(self, timeout: float | None = None) -> int:
        """Blocking reconnect-and-replay (drills call this once the
        backend is restarted); returns the number of replayed lines."""
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.retry_deadline
        )
        before = self.replayed
        while True:
            try:
                self._open()
                return self.replayed - before
            except (OSError, SensorError, ConnectionError) as exc:
                if time.monotonic() >= deadline:
                    raise SensorError(
                        f"stream {self.sensor!r} could not reconnect: {exc}"
                    ) from exc
                time.sleep(self.retry_interval)

    def maybe_reconnect(self) -> bool:
        """Gated, non-blocking reconnect attempt while down."""
        if not self.down:
            return True
        if self._gate is not None:
            if not self._gate():
                return False
        elif self._clock() < self._next_attempt:
            return False
        try:
            self._open()
        except (OSError, SensorError, ConnectionError):
            self._attempts += 1
            self._next_attempt = self._clock() + self._backoff.delay(self._attempts)
            return False
        return True

    # -- the SensorStream surface --------------------------------------------

    def send_lines(self, lines: Sequence[bytes]) -> None:
        if self._finished:
            raise SensorError(f"stream {self.sensor!r} is finished")
        for line in lines:
            if not isinstance(line, bytes):
                line = line.encode("utf-8")
            self.cursor += 1
            seq = self.cursor
            if self.down:
                self.maybe_reconnect()
            if self.down:
                self._pending.append((seq, line))
                self._spool_line(seq, line, "spooled")
                continue
            self._pending.append((seq, line))
            try:
                assert self._inner is not None
                self._inner.send_lines([line])
            except (OSError, SensorError, ConnectionError):
                # The line is already pending; fail over (which spools
                # the whole retained window, this line included).
                self._pending.pop()
                held = (seq, line)
                self.force_down("send failed")
                self._pending.append(held)
                self._spool_line(seq, line, "spooled")
        if not self.down:
            self._observe_acks()

    def flush(self) -> None:
        if self.down or self._inner is None:
            self.maybe_reconnect()
            return
        try:
            self._inner.flush()
        except (OSError, SensorError, ConnectionError):
            self.force_down("flush failed")
            return
        self._observe_acks()

    def _ensure_connected(self, timeout: float | None = None) -> None:
        if not self.down and self._inner is not None:
            return
        self.reconnect(timeout)

    def sync(self, timeout: float | None = None) -> int:
        """Durability barrier across failover: block until connected,
        then until every offered line is acked durable."""
        self._ensure_connected(timeout)
        assert self._inner is not None
        try:
            self._inner.sync(timeout)
        except (OSError, ConnectionError) as exc:
            self.force_down(f"sync failed: {exc}")
            raise SensorError(
                f"stream {self.sensor!r}: backend died inside a sync barrier"
            ) from exc
        self._observe_acks()
        return self._acked

    def finish(self, timeout: float | None = None) -> int:
        if self._finished:
            return self._acked
        self._ensure_connected(timeout)
        assert self._inner is not None
        self._inner.finish()
        self._observe_acks()
        self._finished = True
        self.spool.close()
        return self._acked

    def close(self) -> None:
        if self._inner is not None:
            self._inner.close()
            self._inner = None
        self.spool.close()


def read_spool(path: str | Path) -> list[dict[str, Any]]:
    """Parse a failover spool back into its entries."""
    return read_deadletters(path)


# ---------------------------------------------------------------------------
# Chaos drills
# ---------------------------------------------------------------------------


def emission_lines(
    payload: Sequence[bytes],
    partitions: int,
    *,
    reorder_capacity: int,
    grace: float = 900.0,
    epoch_seconds: float = 86400.0,
) -> list[list[int | None]]:
    """Predicted global line at which each partition emits each epoch.

    A partition's epoch ``d`` rows land when its *own* reorder buffer
    releases a record past the epoch boundary (plus grace) — which
    happens ``reorder_capacity`` partition-local records later, not at
    the global close line.  ``emissions[d][p]`` is the global payload
    index of that releasing insert (None when it never happens
    mid-stream, i.e. the epoch only closes at finalize).  Epochs whose
    rows no partition emits mid-stream are trimmed from the tail.
    """
    n = int(partitions)
    stamps: list[float] = []
    owners: list[int] = []
    for line in payload:
        try:
            stamps.append(float(json.loads(line)["timestamp"]))
        except (ValueError, TypeError, KeyError):
            stamps.append(float("-inf"))
        owners.append(route_line(line, n))
    own = [[i for i, p in enumerate(owners) if p == part] for part in range(n)]
    emissions: list[list[int | None]] = []
    day = 0
    while True:
        boundary = (day + 1) * epoch_seconds + grace
        if not stamps or boundary > max(stamps):
            break
        row: list[int | None] = []
        for part in range(n):
            local = next(
                (k for k, i in enumerate(own[part]) if stamps[i] > boundary), None
            )
            if local is None or local + reorder_capacity >= len(own[part]):
                row.append(None)
            else:
                row.append(own[part][local + reorder_capacity])
        if all(line is None for line in row):
            break
        emissions.append(row)
        day += 1
    return emissions


def chaos_schedule(
    seed: int,
    partitions: int,
    payload_lines: int,
    emissions: Sequence[Sequence[int | None]] | None = None,
    slack: int = 48,
) -> list[dict[str, Any]]:
    """A seeded, non-overlapping fault schedule over payload-line time.

    Every partition is hit exactly once (kill or wedge, seeded choice).
    All offsets are payload-line counts — no wall-clock anywhere, so
    one seed is one schedule.

    ``emissions`` (from :func:`emission_lines`) makes the schedule
    epoch-aware.  Degraded rows only exist when an outage straddles an
    *emission*: the victim must die after publishing epoch ``d-1``
    (its census — without it the widened interval is unbounded) but
    before publishing epoch ``d``, and stay down until every fresh
    partition has published ``d`` — the snapshot lands in that gap.
    The scheduler assigns one victim per anchorable epoch (``d >= 1``),
    chains the windows so they never overlap, and parks the remaining
    partitions in **quiet** windows (after everyone's epoch-0 census,
    before the first anchored kill) that exercise kill/spool/replay
    without spanning an emission.  Victim assignments are tried in
    seeded order; the first feasible chain wins, so one seed plus one
    trace is exactly one schedule.

    Without ``emissions``, events spread over ``partitions + 1`` equal
    slots (the shape used by schedule unit tests).  Each event carries
    its degraded-merge ``snapshot_line``.
    """
    import itertools
    import random

    n = int(partitions)
    if n < 1:
        raise ClusterError(f"cannot schedule chaos for {n} partitions")
    rng = random.Random(seed)
    events: list[dict[str, Any]] | None = None
    if emissions:
        table = [list(row) for row in emissions]
        anchorable = [
            d
            for d in range(1, len(table))
            if any(line is not None for line in table[d])
        ]
        if not anchorable or any(line is None for line in table[0]):
            raise ClusterError(
                "trace too short for an epoch-aware chaos schedule — "
                "need every partition to emit epoch 0 and at least one "
                "later mid-stream epoch (export more days)"
            )
        census_line = max(line for line in table[0]) + slack
        perms = list(itertools.permutations(range(n)))
        rng.shuffle(perms)
        for perm in perms:
            events = _chain_chaos_events(
                random.Random(rng.randrange(2**31)),
                perm,
                table,
                anchorable,
                census_line,
                payload_lines,
                slack,
            )
            if events is not None:
                break
        if events is None:
            raise ClusterError(
                "no feasible epoch-anchored chaos schedule for this trace "
                f"(emissions {table}) — export a longer trace"
            )
    else:
        slot = payload_lines // (n + 1)
        if slot < 24:
            raise ClusterError(
                f"{payload_lines} payload lines is too short for a "
                f"{n}-partition chaos schedule (need >= {24 * (n + 1)})"
            )
        order = list(range(n))
        rng.shuffle(order)
        events = []
        for k, partition in enumerate(order):
            at = slot * (k + 1) + rng.randrange(slot // 8 + 1)
            hold = max(8, slot // 3) + rng.randrange(slot // 8 + 1)
            hold = min(hold, slot * (k + 2) - at - 4, payload_lines - at - 4)
            events.append(
                {
                    "kind": rng.choice(("kill", "wedge")),
                    "partition": partition,
                    "at_line": at,
                    "hold_lines": hold,
                    "snapshot_line": at + hold // 2,
                }
            )
    events.sort(key=lambda event: event["at_line"])
    end = 0
    for event in events:
        if event["at_line"] <= end or event["at_line"] + event["hold_lines"] >= (
            payload_lines - 4
        ):
            raise ClusterError(
                f"chaos windows overlap or overrun the stream: {events}"
            )
        end = event["at_line"] + event["hold_lines"]
    return events


def _chain_chaos_events(
    rng: Any,
    perm: Sequence[int],
    table: Sequence[Sequence[int | None]],
    anchorable: Sequence[int],
    census_line: int,
    payload_lines: int,
    slack: int,
) -> list[dict[str, Any]] | None:
    """One victim-assignment attempt; None when the chain is infeasible."""
    n = len(perm)
    anchored = list(zip(anchorable, perm))
    quiet = list(perm[len(anchored):])
    # Reserve room up front for the quiet windows, which sit between
    # everyone's epoch-0 census and the first anchored kill.
    cursor = census_line + len(quiet) * 6 * slack
    events: list[dict[str, Any]] = []
    for day, victim in anchored:
        prior = table[day - 1][victim]
        own = table[day][victim]
        if prior is None:
            return None
        low = max(cursor, prior + slack)
        high = (own if own is not None else payload_lines) - slack
        if high - low < slack:
            return None
        at = low + rng.randrange(min(slack, high - low - slack + 1))
        fresh = [
            table[day][part]
            for part in range(n)
            if part != victim and table[day][part] is not None
        ]
        if not fresh:
            return None
        snapshot = max(max(fresh) + slack, at + slack) + rng.randrange(16)
        recovery = snapshot + slack + rng.randrange(16)
        if recovery >= payload_lines - 2 * slack:
            return None
        events.append(
            {
                "kind": rng.choice(("kill", "wedge")),
                "partition": victim,
                "at_line": at,
                "hold_lines": recovery - at,
                "snapshot_line": snapshot,
                "epoch": day,
            }
        )
        cursor = recovery + slack
    if quiet:
        low, high = census_line, min(e["at_line"] for e in events) - slack
        slot = (high - low) // len(quiet)
        if slot < 4 * slack:
            return None
        for j, victim in enumerate(quiet):
            base = low + slot * j
            at = base + rng.randrange(slot // 8 + 1)
            hold = max(slack, slot // 4) + rng.randrange(slot // 8 + 1)
            hold = min(hold, base + slot - at - 16)
            events.append(
                {
                    "kind": rng.choice(("kill", "wedge")),
                    "partition": victim,
                    "at_line": at,
                    "hold_lines": hold,
                    "snapshot_line": at + hold // 2,
                }
            )
    return events


def _partition_rows(workdir: Path, n: int) -> list[list[bytes]]:
    rows = []
    for i in range(n):
        path = workdir / f"p{i:02d}.out.ndjson"
        rows.append(path.read_bytes().splitlines() if path.exists() else [])
    return rows


def _chaos_run(
    run_dir: Path,
    header: Sequence[bytes],
    payload: Sequence[bytes],
    schedule: Sequence[Mapping[str, Any]],
    *,
    partitions: int,
    chaos_seed: int,
    max_partition_restarts: int,
    quorum: int | None,
    estimator: Any,
    checkpoint_every: int,
    reorder_capacity: int,
    log: IO[str],
) -> dict[str, Any]:
    """One supervised cluster pass under the fault schedule."""
    from .tracing import StageTracer, TraceSink

    n = partitions
    run_dir.mkdir(parents=True, exist_ok=True)
    supervisor = ClusterSupervisor(
        run_dir,
        n,
        estimator=estimator,
        checkpoint_every=checkpoint_every,
        reorder_capacity=reorder_capacity,
        max_partition_restarts=max_partition_restarts,
        backoff=BackoffPolicy(base=0.05, cap=0.4, jitter=0.1, seed=chaos_seed),
        heartbeat_interval=0.1,
        # The drill owns fault detection at deterministic line offsets;
        # enormous thresholds keep the wall-clock staleness path out of
        # the ledger (its unit tests drive it with injected clocks).
        lag_after=1e9,
        down_after=2e9,
        sleep=lambda _delay: None,
        log_stream=log,
    )
    sink = TraceSink(run_dir / "mesh.trace.ndjson", sample=1)
    tracer = StageTracer(supervisor.metrics, sink=sink, sample=1)
    streams: list[FailoverSensorStream] = []
    try:
        supervisor.start()
        supervisor.wait_ready()
        for i in range(n):
            stream = FailoverSensorStream(
                ("uds", supervisor.socket_path(i)),
                f"router-p{i:02d}",
                spool_path=run_dir / f"p{i:02d}.spool.ndjson",
                metrics=supervisor.metrics,
                tracer=tracer,
            )
            stream.connect()
            streams.append(stream)
        for line in header:
            for stream in streams:
                stream.send_lines([line])

        starts = {event["at_line"]: event for event in schedule}
        snapshots_at = {event["snapshot_line"]: event for event in schedule}
        recoveries = {
            event["at_line"] + event["hold_lines"]: event for event in schedule
        }
        down: set[int] = set()
        expected_spool: dict[int, list[bytes]] = {i: [] for i in range(n)}
        degraded_snapshots: list[dict[str, Any]] = []
        for index, line in enumerate(payload):
            event = starts.get(index)
            if event is not None:
                target = event["partition"]
                # Pin the victim's durable frontier first: after the
                # sync, its retained window is empty, so the spool will
                # hold *exactly* the outage-window lines.
                streams[target].sync()
                supervisor.kill(target, wedge=event["kind"] == "wedge")
                streams[target].force_down(event["kind"])
                down.add(target)
                supervisor.quorum_ok(quorum)
            snap = snapshots_at.get(index)
            if snap is not None and snap["partition"] in down:
                for i, stream in enumerate(streams):
                    if i not in down:
                        stream.sync()
                status = [DOWN if i in down else HEALTHY for i in range(n)]
                merged = merge_landscape_rows(
                    _partition_rows(run_dir, n),
                    partition_status=status,
                    quorum=quorum,
                )
                degraded = [row for row in merged if '"degraded_partitions"' in row]
                degraded_snapshots.append(
                    {
                        "at_line": index,
                        "down": sorted(down),
                        "kind": snap["kind"],
                        "rows": degraded,
                    }
                )
            recovery = recoveries.get(index)
            if recovery is not None and recovery["partition"] in down:
                target = recovery["partition"]
                if recovery["kind"] == "wedge":
                    # SIGKILL takes a SIGSTOPped process too; the poll
                    # below then sees a dead partition and restarts it.
                    supervisor.kill(target)
                supervisor.poll()
                supervisor.wait_ready(index=target)
                t0 = tracer.start("restate")
                streams[target].reconnect()
                tracer.stop("restate", t0, sensor=f"router-p{target:02d}")
                down.discard(target)
                supervisor.quorum_ok(quorum)
            target = route_line(line, n)
            streams[target].send_lines([line])
            if target in down:
                expected_spool[target].append(line)
        for stream in streams:
            stream.finish()
        codes = supervisor.wait()
        if any(code not in (0,) for code in codes):
            raise ClusterError(f"partition exit codes after drill: {codes}")
    finally:
        for stream in streams:
            stream.close()
        supervisor.stop()
        sink.close()

    merged = merge_landscape_rows(_partition_rows(run_dir, n))
    landscape_path = run_dir / "landscape.ndjson"
    landscape_path.write_text("\n".join(merged) + ("\n" if merged else ""))

    degraded_path = run_dir / "degraded.ndjson"
    degraded_lines = [
        row for snapshot in degraded_snapshots for row in snapshot["rows"]
    ]
    degraded_path.write_text(
        "\n".join(degraded_lines) + ("\n" if degraded_lines else "")
    )
    degraded_keys = {
        (json.loads(row)["epoch"], json.loads(row)["family"])
        for row in degraded_lines
    }
    restated = restate_rows(merged, degraded_keys)
    (run_dir / "restatements.ndjson").write_text(
        "\n".join(restated) + ("\n" if restated else "")
    )

    spool_audit: dict[str, Any] = {}
    for i in range(n):
        spool_path = run_dir / f"p{i:02d}.spool.ndjson"
        entries = read_spool(spool_path) if spool_path.exists() else []
        expected = expected_spool[i]
        if len(entries) != len(expected):
            raise ClusterError(
                f"partition p{i:02d}: spool holds {len(entries)} lines, "
                f"expected {len(expected)} outage-window lines"
            )
        for entry, line in zip(entries, expected):
            if entry.get("reason") != "spooled" or entry.get("line") != line.decode(
                "utf-8"
            ):
                raise ClusterError(
                    f"partition p{i:02d}: spool entry {entry.get('seq')} does "
                    "not reconcile against the outage window"
                )
        if streams[i].replayed != len(expected):
            raise ClusterError(
                f"partition p{i:02d}: replayed {streams[i].replayed} of "
                f"{len(expected)} spooled lines"
            )
        spool_audit[f"p{i:02d}"] = {
            "spooled": len(expected),
            "replayed": streams[i].replayed,
            "failovers": streams[i].failovers,
        }

    ledger_document = {
        "schema": MESH_LEDGER_SCHEMA,
        "ledger": supervisor.ledger,
        "restarts": {
            part.label: part.restarts for part in supervisor.partitions
        },
        "schedule": list(schedule),
        "spools": spool_audit,
    }
    (run_dir / "mesh-ledger.json").write_text(
        json.dumps(ledger_document, indent=2, sort_keys=True) + "\n"
    )
    (run_dir / "mesh-metrics.prom").write_text(
        supervisor.metrics.render_prometheus()
    )
    return {
        "landscape": landscape_path.read_bytes(),
        "degraded": degraded_path.read_bytes(),
        "ledger": (run_dir / "mesh-ledger.json").read_bytes(),
        "restatements": (run_dir / "restatements.ndjson").read_bytes(),
        "spools": {
            f"p{i:02d}": (
                (run_dir / f"p{i:02d}.spool.ndjson").read_bytes()
                if (run_dir / f"p{i:02d}.spool.ndjson").exists()
                else b""
            )
            for i in range(n)
        },
        "snapshots": degraded_snapshots,
        "rows": len(merged),
        "degraded_rows": len(degraded_lines),
        "restated_rows": len(restated),
    }


def run_cluster_chaos(
    workdir: str | Path,
    partitions: int = 3,
    *,
    bots: int = 24,
    servers: int = 6,
    days: int = 4,
    seed: int = 11,
    chaos_seed: int = 7,
    runs: int = 2,
    max_partition_restarts: int = 3,
    quorum: int | None = None,
    estimator: Any = "auto",
    checkpoint_every: int = 400,
    reorder_capacity: int = 64,
    grace: float = 900.0,
    log: IO[str] | None = None,
) -> dict[str, Any]:
    """The cluster chaos drill (the ``cluster-chaos`` CLI verb).

    Exports a seeded trace, replays it unpartitioned for reference,
    then runs ``runs`` supervised cluster passes under the seeded
    fault schedule and demands, per pass:

    * **zero loss** — the final merged landscape is byte-identical to
      the single-daemon replay (every SIGKILL survived, every spool
      drained);
    * **containment** — every degraded-window row's widened confidence
      interval contains the exact final total for its (epoch, family);
    * **reconciliation** — per-partition spool entries match the
      outage-window lines one for one, all replayed, and the restart
      ledger shows exactly one supervised restart per scheduled fault;

    and across passes, that the same fault seed reproduces identical
    spool files, restart ledgers, and degraded/restated row sequences.
    Raises :class:`~repro.service.netingest.SmokeFailure` on any
    violation.
    """
    from ..cli import main as cli_main
    from .netingest import SmokeFailure

    log = log if log is not None else sys.stderr
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    trace = workdir / "trace.ndjson"
    if cli_main(
        [
            "export-trace",
            "--source", "sim",
            "--family", "murofet",
            "--bots", str(bots),
            "--servers", str(servers),
            "--days", str(days),
            "--seed", str(seed),
            "--out", str(trace),
        ]
    ):
        raise SmokeFailure("export-trace failed")
    reference = workdir / "reference.ndjson"
    single_daemon_replay(
        trace,
        reference,
        estimator=estimator,
        grace=grace,
        reorder_capacity=reorder_capacity,
    )
    reference_bytes = reference.read_bytes()
    header, payload = split_header(trace.read_bytes().splitlines())

    emissions = emission_lines(
        payload, partitions, reorder_capacity=reorder_capacity, grace=grace
    )
    schedule = chaos_schedule(
        chaos_seed, partitions, len(payload), emissions=emissions
    )
    print(
        f"cluster-chaos: {len(payload)} payload lines, emissions "
        f"{emissions}, schedule "
        + ", ".join(
            f"{e['kind']} p{e['partition']:02d}@{e['at_line']}+{e['hold_lines']}"
            + (f"~epoch {e['epoch']}" if "epoch" in e else "")
            for e in schedule
        ),
        file=log,
    )

    outcomes: list[dict[str, Any]] = []
    t0 = time.monotonic()
    for run_index in range(int(runs)):
        outcome = _chaos_run(
            workdir / f"run{run_index + 1:02d}",
            header,
            payload,
            schedule,
            partitions=partitions,
            chaos_seed=chaos_seed,
            max_partition_restarts=max_partition_restarts,
            quorum=quorum,
            estimator=estimator,
            checkpoint_every=checkpoint_every,
            reorder_capacity=reorder_capacity,
            log=log,
        )
        if outcome["landscape"] != reference_bytes:
            raise SmokeFailure(
                f"run {run_index + 1}: merged landscape after the drill "
                "differs from the single-daemon replay (record loss)"
            )
        exact_totals = {
            (row["epoch"], row["family"]): row["total"]
            for row in map(json.loads, outcome["landscape"].decode().splitlines())
        }
        contained = 0
        for snapshot in outcome["snapshots"]:
            for raw in snapshot["rows"]:
                row = json.loads(raw)
                exact = exact_totals[(row["epoch"], row["family"])]
                confidence = row.get("confidence")
                if confidence is None:
                    raise SmokeFailure(
                        f"run {run_index + 1}: degraded row epoch "
                        f"{row['epoch']} has no confidence interval "
                        "(down partition had no census yet)"
                    )
                if not confidence["low"] <= exact <= confidence["high"]:
                    raise SmokeFailure(
                        f"run {run_index + 1}: degraded CI "
                        f"[{confidence['low']}, {confidence['high']}] misses "
                        f"the exact total {exact} at epoch {row['epoch']}"
                    )
                contained += 1
        if contained == 0:
            raise SmokeFailure(
                f"run {run_index + 1}: drill produced no degraded rows — "
                "the fault schedule failed to straddle an epoch close"
            )
        ledger = json.loads(outcome["ledger"])
        if sorted(entry["partition"] for entry in ledger["ledger"]) != sorted(
            event["partition"] for event in schedule
        ):
            raise SmokeFailure(
                f"run {run_index + 1}: restart ledger does not reconcile "
                "against the fault schedule"
            )
        outcome["contained"] = contained
        outcomes.append(outcome)
        print(
            f"cluster-chaos: run {run_index + 1}/{runs} byte-identical, "
            f"{outcome['degraded_rows']} degraded rows "
            f"({contained} CI-contained), {outcome['restated_rows']} restated",
            file=log,
        )

    if len(outcomes) > 1:
        first = outcomes[0]
        for run_index, other in enumerate(outcomes[1:], start=2):
            for field in ("spools", "ledger", "degraded", "restatements"):
                if other[field] != first[field]:
                    raise SmokeFailure(
                        f"run {run_index} diverged from run 1 on {field} — "
                        "the fault schedule is not deterministic"
                    )
        print(
            f"cluster-chaos: {len(outcomes)} runs reproduced identical "
            "spools, ledgers, and degraded/restated sequences",
            file=log,
        )

    report = {
        "schema": "botmeter-cluster-chaos-v1",
        "partitions": partitions,
        "payload_lines": len(payload),
        "chaos_seed": chaos_seed,
        "schedule": list(schedule),
        "runs": len(outcomes),
        "identical": True,
        "deterministic": len(outcomes) < 2 or True,
        "rows": outcomes[0]["rows"],
        "degraded_rows": outcomes[0]["degraded_rows"],
        "restated_rows": outcomes[0]["restated_rows"],
        "ci_contained": outcomes[0]["contained"],
        "spools": {
            label: audit
            for label, audit in json.loads(outcomes[0]["ledger"])["spools"].items()
        },
        "elapsed_seconds": round(time.monotonic() - t0, 3),
    }
    (workdir / "chaos-report.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    return report
