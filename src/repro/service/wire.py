"""botmeterd wire format: versioned NDJSON for vantage-point streams.

One record per line, every line a self-describing JSON object carrying
the wire version.  Three line types exist:

* ``header`` — optional stream metadata (families, seeds, granularity),
  written first by ``repro-botmeter export-trace`` so ``serve``/``replay``
  can configure themselves without flags;
* ``lookup`` (the default when ``type`` is absent) — one
  :class:`~repro.dns.message.ForwardedLookup`;
* ``landscape`` — one closed epoch, emitted by the daemon.

Decoding is defensive: a deployed collector restarts mid-line, ships
partial buffers, and interleaves garbage.  :class:`NdjsonReader`
therefore skips blank and corrupt lines, *counts* every skip, and only
raises once the corrupt count passes a configurable cap — the counted
skip policy.  A *truncated* line is different from a corrupt one: the
final line of a live tail may simply still be in flight, so callers
flag it with ``complete=False`` and the reader counts it separately
(``truncated_tail``) without charging the corrupt budget — the caller
retries it once more bytes (or stream end) arrive.

The retry contract is designed for **non-seekable** sources (sockets,
pipes) as much as for file tails: the reader never buffers a truncated
probe and never needs the caller to rewind.  The *caller* retains the
unconsumed tail, appends the bytes that arrive next, and re-feeds the
whole line — with ``complete=True`` once a newline (or stream end)
delimits it.  Under ``complete=False`` the reader consumes a line only
when it decodes to a full JSON *object*; every other outcome —
undecodable bytes, a JSON syntax error, or a non-object value such as
a bare number that may be the prefix of a longer one — counts one
``truncated_tail`` and leaves classification to the retry.  Each probe
of the same tail counts again, so probe once per quiet period, not per
received chunk.

Every landscape line carries a ``quality`` annotation — records charted
(matched) plus the late/dropped/quarantined deltas attributed to that
epoch and the resulting estimated loss fraction — so downstream
consumers can widen confidence intervals for degraded input
(:func:`repro.core.confidence.widen_for_loss`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..core.botmeter import Landscape
from ..dns.message import ForwardedLookup

__all__ = [
    "WIRE_VERSION",
    "WireError",
    "encode_record",
    "decode_record",
    "encode_header",
    "encode_register",
    "encode_landscape",
    "landscape_to_dict",
    "finalize_quality",
    "NdjsonReader",
    "NdjsonBatchDecoder",
]

#: Version stamped on (and required of) every wire line.
WIRE_VERSION = 1

_COMPACT = {"sort_keys": True, "separators": (",", ":")}


class WireError(ValueError):
    """A wire-format violation the skip policy refuses to absorb."""


def _dumps(obj: Mapping[str, Any]) -> str:
    return json.dumps(obj, **_COMPACT)


def encode_record(record: ForwardedLookup) -> str:
    """One NDJSON line (no trailing newline) for a lookup record."""
    return _dumps({"v": WIRE_VERSION, **record.to_dict()})


#: The exact key order :func:`encode_record` produces (``sort_keys``),
#: which ``json.loads`` preserves — the precompiled-schema fingerprint
#: the decode fast path matches against.
_FAST_KEYS = ("domain", "server", "timestamp", "v")


def decode_record(data: Mapping[str, Any]) -> ForwardedLookup:
    """Decode a parsed lookup object, checking the wire version.

    The hot path is a precompiled field-order check: a line our own
    encoder wrote carries exactly ``_FAST_KEYS`` in that order, so one
    tuple comparison plus three ``type`` checks replaces the per-record
    key-set validation.  Anything else — extra keys, reordered keys,
    integer timestamps, foreign versions — falls through to the slow
    validator, whose error taxonomy feeds the quarantine sink.
    """
    if tuple(data) == _FAST_KEYS and data["v"] == WIRE_VERSION:
        timestamp = data["timestamp"]
        server = data["server"]
        domain = data["domain"]
        if (
            type(timestamp) is float
            and type(server) is str
            and type(domain) is str
        ):
            return ForwardedLookup(timestamp, server, domain)
    return _decode_record_slow(data)


def _decode_record_slow(data: Mapping[str, Any]) -> ForwardedLookup:
    """Full validation — the quarantine/first-record path."""
    version = data.get("v")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version!r}")
    try:
        return ForwardedLookup.from_dict(data)
    except (KeyError, TypeError) as exc:
        raise WireError(str(exc)) from exc


def encode_header(meta: Mapping[str, Any]) -> str:
    """The stream-metadata line (families, seeds, granularity, ...)."""
    return _dumps({"v": WIRE_VERSION, "type": "header", **meta})


def encode_register(family: str, base: str, seed: int) -> str:
    """A ``register`` control line: onboard ``family`` live, mid-stream.

    ``base`` names the generator type (a known family builder) and
    ``seed`` its re-keyed seed — together they let every consumer
    (daemon, workers, checkpoint restore) rebuild the identical DGA
    without the trace carrying code.  Control lines exist only on the
    NDJSON wire; the columnar v2 format carries lookup records alone.
    """
    return _dumps(
        {"v": WIRE_VERSION, "type": "register", "family": family, "base": base, "seed": seed}
    )


def finalize_quality(
    landscape: Landscape, quality: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """The per-epoch quality annotation, with the loss fraction derived.

    ``quality`` carries whatever degradation deltas the emitter tracked
    (``late``, ``dropped``, ``quarantined``); missing keys default to 0,
    so a clean batch emission and a clean streamed emission produce the
    identical annotation — preserving the byte-equality anchor.

    Live-detection runs add three optional keys: ``d3_missed`` /
    ``d3_fp`` (per-epoch deltas of records the inline classifier
    dropped despite matching a family window, resp. passed despite
    matching none) and ``d3_miss_rate`` (the cumulative measured miss
    rate).  DoH-degraded vantages add ``doh_loss`` (the estimated
    encryption-adoption fraction).  All of them appear only when the
    emitter provides them, so an oracle-D3, cleartext stream keeps the
    exact historical annotation bytes.  ``d3_missed`` counts into the
    lost total, and ``doh_loss`` compounds multiplicatively into
    ``loss`` (a record survives the channel only if it is neither
    encrypted away nor missed), so
    :func:`repro.core.confidence.widen_for_loss` sees the *measured*
    degradation, not the configured one.
    """
    annotation = {
        "matched": int(sum(landscape.matched_counts.values())),
        "late": 0,
        "dropped": 0,
        "quarantined": 0,
    }
    for key in ("matched", "late", "dropped", "quarantined"):
        if quality is not None and key in quality:
            annotation[key] = int(quality[key])
    lost = annotation["late"] + annotation["dropped"] + annotation["quarantined"]
    if quality is not None:
        for key in ("d3_missed", "d3_fp"):
            if key in quality:
                annotation[key] = int(quality[key])
        if "d3_miss_rate" in quality:
            annotation["d3_miss_rate"] = round(float(quality["d3_miss_rate"]), 6)
        lost += annotation.get("d3_missed", 0)
    denominator = annotation["matched"] + lost
    doh = 0.0
    if quality is not None and "doh_loss" in quality:
        doh = min(max(float(quality["doh_loss"]), 0.0), 1.0)
        annotation["doh_loss"] = round(doh, 6)
    if doh > 0.0:
        visible = lost / denominator if denominator else 0.0
        annotation["loss"] = round(1.0 - (1.0 - visible) * (1.0 - doh), 6)
    else:
        annotation["loss"] = round(lost / denominator, 6) if denominator else 0.0
    return annotation


def landscape_to_dict(
    family: str,
    day_index: int,
    landscape: Landscape,
    quality: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """JSON-ready form of one closed epoch.

    Estimate values, matched counts and the quality annotation are
    carried — enough to ``diff`` two landscape series for exact
    equality and to judge how degraded each epoch's input was.
    """
    return {
        "v": WIRE_VERSION,
        "type": "landscape",
        "family": family,
        "epoch": day_index,
        "estimator": landscape.estimator_name,
        "total": landscape.total,
        "quality": finalize_quality(landscape, quality),
        "servers": {
            server: {
                "estimate": estimate.value,
                "matched": landscape.matched_counts.get(server, 0),
            }
            for server, estimate in landscape.per_server.items()
        },
    }


def encode_landscape(
    family: str,
    day_index: int,
    landscape: Landscape,
    quality: Mapping[str, Any] | None = None,
) -> str:
    """One NDJSON line for a closed epoch (deterministic key order)."""
    return _dumps(landscape_to_dict(family, day_index, landscape, quality))


@dataclass
class NdjsonReader:
    """Streaming NDJSON decoder with a counted skip policy.

    Feed it raw lines (``bytes`` or ``str``); it returns decoded
    :class:`ForwardedLookup` records, absorbs blank lines, headers and
    corrupt lines, and keeps count of everything it absorbed.

    Args:
        max_corrupt: corrupt-line budget; exceeding it raises
            :class:`WireError`.  ``None`` (default) tolerates any number
            — every skip is still counted.
        on_corrupt: optional quarantine sink ``(line, reason) -> None``,
            called for every corrupt line (the daemon wires this to the
            dead-letter queue).
    """

    max_corrupt: int | None = None
    records: int = 0
    blank: int = 0
    corrupt: int = 0
    truncated_tail: int = 0
    header: dict[str, Any] | None = field(default=None, repr=False)
    on_corrupt: Callable[[str, str], None] | None = field(
        default=None, repr=False, compare=False
    )
    #: Optional control-line sink ``(data) -> bool``: called for each
    #: ``register`` line; return ``True`` once the control is accepted.
    #: Unhandled (or handler-less) controls fall through to the corrupt
    #: skip policy, so pre-registry consumers keep their exact counts.
    on_control: Callable[[dict], bool] | None = field(
        default=None, repr=False, compare=False
    )
    #: Optional :class:`~repro.service.tracing.StageTracer`; when set,
    #: every ``feed`` becomes a sampled ``decode`` span.
    tracer: Any = field(default=None, repr=False, compare=False)

    @property
    def skipped(self) -> int:
        """Total absorbed lines (blank + corrupt)."""
        return self.blank + self.corrupt

    def _corrupt_line(self, line: str, reason: str) -> None:
        self.corrupt += 1
        if self.on_corrupt is not None:
            self.on_corrupt(line, reason)
        if self.max_corrupt is not None and self.corrupt > self.max_corrupt:
            raise WireError(
                f"corrupt-line budget exceeded ({self.corrupt} > "
                f"{self.max_corrupt}): {reason}: {line[:120]!r}"
            )

    def feed(
        self, line: bytes | str, *, complete: bool = True
    ) -> ForwardedLookup | None:
        """Decode one line; ``None`` for anything that is not a lookup.

        ``complete=False`` marks a newline-less tail that may still be
        in flight (a live file tail, or the residue of a socket read):
        unless it decodes to a full JSON object it is counted as
        ``truncated_tail`` — a retriable in-flight write, not budgeted
        corruption — and ``None`` is returned *without consuming it*.
        The reader holds no state for the probe, so the contract works
        for non-seekable streams: the caller keeps the tail, appends
        the next bytes, and re-feeds the whole line (``complete=True``
        once it is newline- or stream-end-delimited).
        """
        tracer = self.tracer
        if tracer is None:
            return self._feed(line, complete)
        t0 = tracer.start("decode")
        record = self._feed(line, complete)
        if t0:
            tracer.stop("decode", t0)
        return record

    def _feed(self, line: bytes | str, complete: bool) -> ForwardedLookup | None:
        if isinstance(line, bytes):
            try:
                line = line.decode("utf-8")
            except UnicodeDecodeError:
                if not complete:
                    self.truncated_tail += 1
                    return None
                self._corrupt_line(repr(line[:120]), "undecodable bytes")
                return None
        stripped = line.strip()
        if not stripped:
            self.blank += 1
            return None
        try:
            data = json.loads(stripped)
        except json.JSONDecodeError:
            if not complete:
                self.truncated_tail += 1
                return None
            self._corrupt_line(stripped, "invalid JSON")
            return None
        if not isinstance(data, dict):
            if not complete:
                # A bare scalar can be the *prefix* of a longer one
                # ("12" while "123\n" is in flight), so a non-object
                # probe stays retriable — charging corrupt here would
                # both miscount and consume a line the caller is
                # contractually re-feeding later.
                self.truncated_tail += 1
                return None
            self._corrupt_line(stripped, "not a JSON object")
            return None
        return self._feed_object(stripped, data)

    def _feed_object(self, stripped: str, data: dict) -> ForwardedLookup | None:
        kind = data.get("type", "lookup")
        if kind == "header":
            self.header = data
            return None
        if kind == "register":
            handler = self.on_control
            if handler is not None and handler(data):
                return None
            self._corrupt_line(stripped, "unhandled control line 'register'")
            return None
        if kind != "lookup":
            self._corrupt_line(stripped, f"unknown line type {kind!r}")
            return None
        try:
            record = decode_record(data)
        except WireError as exc:
            self._corrupt_line(stripped, str(exc))
            return None
        self.records += 1
        return record

    def feed_parsed(
        self, line: bytes | str, data: Any
    ) -> ForwardedLookup | None:
        """Decode an already-parsed complete line under the skip policy.

        ``data`` must be ``json.loads`` of ``line``.  Callers that parse
        every line themselves anyway (the network ingest tier peeks each
        payload line for its merge key) use this to skip a second parse;
        counters, header capture and quarantine behaviour are identical
        to ``feed(line)`` on a complete line.
        """
        tracer = self.tracer
        if tracer is None:
            return self._feed_parsed(line, data)
        t0 = tracer.start("decode")
        record = self._feed_parsed(line, data)
        if t0:
            tracer.stop("decode", t0)
        return record

    def _feed_parsed(self, line: bytes | str, data: Any) -> ForwardedLookup | None:
        if isinstance(line, bytes):
            line = line.decode("utf-8")
        stripped = line.strip()
        if not isinstance(data, dict):
            self._corrupt_line(stripped, "not a JSON object")
            return None
        return self._feed_object(stripped, data)

    def read(self, lines: Iterable[bytes | str]) -> Iterator[ForwardedLookup]:
        """Decode a whole line stream, yielding lookup records."""
        for line in lines:
            record = self.feed(line)
            if record is not None:
                yield record


class NdjsonBatchDecoder:
    """Chunk-oriented NDJSON decode for batched ingest.

    Feed it arbitrary byte chunks (any split — mid-line boundaries
    included); it reassembles lines and drives a regular
    :class:`NdjsonReader`, so skip counting, header capture, quarantine
    sinks and the corrupt budget behave *identically* to line-at-a-time
    decoding — the decoder is a pure re-chunking layer (the property
    test in ``tests/test_service_wire.py`` pins this).

    ``consumed`` counts the bytes of every fully decoded line (newline
    included), i.e. the stream offset up to which the decode is durable
    — the daemon checkpoints input offsets from it.  The newline-less
    tail is held back until more bytes arrive; at stream end call
    :meth:`flush` to decode it (``complete=False`` applies the reader's
    truncated-tail policy and *retains* the tail for a later retry).
    """

    def __init__(
        self,
        reader: NdjsonReader | None = None,
        *,
        max_corrupt: int | None = None,
        on_corrupt: Callable[[str, str], None] | None = None,
    ) -> None:
        self.reader = (
            reader
            if reader is not None
            else NdjsonReader(max_corrupt=max_corrupt, on_corrupt=on_corrupt)
        )
        self._tail = b""
        self.consumed = 0

    @property
    def pending(self) -> bytes:
        """The held-back partial line (no newline seen yet)."""
        return self._tail

    def iter_push(self, chunk: bytes) -> Iterator[ForwardedLookup]:
        """Decode one chunk lazily, yielding lookup records.

        ``consumed`` and the reader's counters advance as the iterator
        is drained, so a caller can observe per-record reader state
        (e.g. the corrupt count) between yields.
        """
        data = self._tail + chunk
        lines = data.split(b"\n")
        self._tail = lines.pop()
        for line in lines:
            self.consumed += len(line) + 1
            record = self.reader.feed(line)
            if record is not None:
                yield record

    def push(self, chunk: bytes) -> list[ForwardedLookup]:
        """Decode one chunk eagerly; returns its complete-line records."""
        return list(self.iter_push(chunk))

    def flush(self, complete: bool = True) -> list[ForwardedLookup]:
        """Decode the held tail at stream end (or probe a live tail).

        ``complete=True`` (stream ended): the tail is a final line —
        decode it under the normal corrupt policy and consume it.
        ``complete=False`` (live tail, producer mid-write): probe it
        under the reader's truncated-tail policy; if it parses it is
        consumed, otherwise it is counted as ``truncated_tail`` and
        *kept* for the next :meth:`push` to complete.
        """
        if not self._tail:
            return []
        line = self._tail
        before = self.reader.truncated_tail
        record = self.reader.feed(line, complete=complete)
        if not complete and self.reader.truncated_tail > before:
            return []  # still in flight; retry once more bytes arrive
        self._tail = b""
        self.consumed += len(line)
        return [record] if record is not None else []
