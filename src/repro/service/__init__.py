"""repro.service — botmeterd, the live landscape-charting service.

The deployable face of the reproduction (§I, Figure 1): a border-server
daemon that ingests the forwarded-lookup stream as versioned NDJSON,
demultiplexes it into per-(family × local-server) streaming shards,
emits per-epoch landscapes, checkpoints atomically for crash recovery,
and exposes Prometheus-style metrics.

Modules:

* :mod:`~repro.service.wire` — versioned NDJSON wire format + tolerant
  streaming reader (counted skip policy);
* :mod:`~repro.service.reorder` — bounded reorder buffer with explicit
  backpressure (block vs drop-oldest);
* :mod:`~repro.service.engine` — the sharded multi-family engine with
  watermark-based epoch closure;
* :mod:`~repro.service.checkpoint` — atomic JSON checkpoint store;
* :mod:`~repro.service.metrics` — counters/gauges, text exposition,
  JSON health snapshot;
* :mod:`~repro.service.daemon` — the serve/replay loop plus the batch
  reference series.
"""

from .checkpoint import CHECKPOINT_SCHEMA, CheckpointError, CheckpointStore
from .daemon import BotMeterDaemon, batch_series, families_from_header
from .engine import EpochLandscape, ShardedLandscapeEngine
from .metrics import Counter, Gauge, MetricsRegistry
from .reorder import Backpressure, ReorderBuffer
from .wire import (
    WIRE_VERSION,
    NdjsonReader,
    WireError,
    encode_header,
    encode_landscape,
    encode_record,
    landscape_to_dict,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointStore",
    "BotMeterDaemon",
    "batch_series",
    "families_from_header",
    "EpochLandscape",
    "ShardedLandscapeEngine",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Backpressure",
    "ReorderBuffer",
    "WIRE_VERSION",
    "NdjsonReader",
    "WireError",
    "encode_header",
    "encode_landscape",
    "encode_record",
    "landscape_to_dict",
]
