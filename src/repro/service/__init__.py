"""repro.service — botmeterd, the live landscape-charting service.

The deployable face of the reproduction (§I, Figure 1): a border-server
daemon that ingests the forwarded-lookup stream as versioned NDJSON,
demultiplexes it into per-(family × local-server) streaming shards,
emits per-epoch landscapes, checkpoints atomically for crash recovery,
and exposes Prometheus-style metrics.

Modules:

* :mod:`~repro.service.wire` — versioned NDJSON wire format + tolerant
  streaming reader (counted skip policy, truncated-tail detection);
* :mod:`~repro.service.reorder` — bounded reorder buffer with explicit
  backpressure (block vs drop-oldest);
* :mod:`~repro.service.engine` — the sharded multi-family engine with
  watermark-based epoch closure and per-epoch quality annotations;
* :mod:`~repro.service.checkpoint` — atomic JSON checkpoint store with
  a previous-generation fallback;
* :mod:`~repro.service.metrics` — counters/gauges, text exposition,
  JSON health snapshot;
* :mod:`~repro.service.daemon` — the serve/replay loop plus the batch
  reference series;
* :mod:`~repro.service.faults` — deterministic seeded fault injection
  (the Faultline layer);
* :mod:`~repro.service.deadletter` — NDJSON quarantine sidecar with
  reason codes;
* :mod:`~repro.service.supervisor` — health state machine, bounded
  backoff, restart supervision;
* :mod:`~repro.service.soak` — the end-to-end fault soak harness.
"""

from .checkpoint import CHECKPOINT_SCHEMA, CheckpointError, CheckpointStore
from .daemon import BotMeterDaemon, batch_series, families_from_header
from .deadletter import DEADLETTER_SCHEMA, DeadLetterQueue, read_deadletters
from .engine import EpochLandscape, ShardedLandscapeEngine
from .faults import (
    FaultInjector,
    FaultLedger,
    FaultSpec,
    InjectedCrashError,
    InjectedFault,
    UpstreamStallError,
    parse_fault_spec,
)
from .metrics import Counter, Gauge, MetricsRegistry
from .reorder import Backpressure, ReorderBuffer
from .supervisor import (
    BackoffPolicy,
    HealthMonitor,
    HealthState,
    Supervisor,
    SupervisorGaveUp,
)
from .wire import (
    WIRE_VERSION,
    NdjsonReader,
    WireError,
    encode_header,
    encode_landscape,
    encode_record,
    finalize_quality,
    landscape_to_dict,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointStore",
    "BotMeterDaemon",
    "batch_series",
    "families_from_header",
    "DEADLETTER_SCHEMA",
    "DeadLetterQueue",
    "read_deadletters",
    "EpochLandscape",
    "ShardedLandscapeEngine",
    "FaultInjector",
    "FaultLedger",
    "FaultSpec",
    "InjectedCrashError",
    "InjectedFault",
    "UpstreamStallError",
    "parse_fault_spec",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Backpressure",
    "ReorderBuffer",
    "BackoffPolicy",
    "HealthMonitor",
    "HealthState",
    "Supervisor",
    "SupervisorGaveUp",
    "WIRE_VERSION",
    "NdjsonReader",
    "WireError",
    "encode_header",
    "encode_landscape",
    "encode_record",
    "finalize_quality",
    "landscape_to_dict",
]
