"""botmeterd wire format v2: struct-packed binary frames.

``botmeterd-wire-v2`` is the compact binary twin of the NDJSON v1 wire
(:mod:`repro.service.wire`).  A v2 stream is a sequence of *frames*::

    MAGIC(4) | version(u8) | type(u8) | payload_len(u32 LE) | crc32(u32 LE)
    payload_len bytes of payload

Three frame types exist:

* ``META`` — the stream header object (the v1 ``type: "header"`` line),
  stored as compact JSON so conversion round-trips byte-exactly;
* ``RECORDS`` — a columnar batch of lookups: a frame-scoped string
  table for servers and one for domains (each string stored once per
  frame), then three parallel columns — ``float64`` timestamps,
  ``uint32`` server ids, ``uint32`` domain ids — decodable with
  ``np.frombuffer`` and no per-record parsing;
* ``QUARANTINE`` — one corrupt v1 line carried verbatim with its
  skip-policy reason, so ``convert-trace`` preserves the counted-skip
  accounting (and its *position* in the stream) exactly.

Frames are **self-contained**: the string tables are frame-scoped, not
stream-scoped, so a reader can resume at any frame boundary (checkpoint
offsets land there) and a quarantined frame never poisons its
successors.

Corrupt-byte handling mirrors the v1 counted-skip policy, but the unit
of quarantine is a *byte region*, not a line: a bad magic, a foreign
version, an oversized length or a CRC mismatch charges **one** corrupt
event to the shared :class:`~repro.service.wire.NdjsonReader` counters
(firing its ``on_corrupt`` sink with a snippet) and the decoder resyncs
by scanning for the next frame magic — a corrupt frame quarantines
bytes, not the stream.  Region accounting depends only on the
cumulative byte stream, never on how it was chunked, so any-chunking
decode equality holds for v2 exactly as it does for v1 (the property
test in ``tests/test_service_wire2.py`` pins this).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import IO, Any, Iterable, Iterator, Mapping

import numpy as np

from ..dns.message import ForwardedLookup
from .wire import NdjsonReader, encode_record

__all__ = [
    "WIRE2_MAGIC",
    "WIRE2_SCHEMA",
    "WIRE2_VERSION",
    "FRAME_META",
    "FRAME_RECORDS",
    "FRAME_QUARANTINE",
    "LookupColumns",
    "Wire2Writer",
    "Wire2BatchDecoder",
    "encode_frame",
    "encode_records_frame",
    "sniff_wire2",
    "ndjson_to_wire2",
    "wire2_to_ndjson_lines",
]

WIRE2_SCHEMA = "botmeterd-wire-v2"
WIRE2_MAGIC = b"BM2F"
WIRE2_VERSION = 2

FRAME_META = 1
FRAME_RECORDS = 2
FRAME_QUARANTINE = 3

_KNOWN_FRAMES = frozenset({FRAME_META, FRAME_RECORDS, FRAME_QUARANTINE})

#: ``MAGIC | version | type | payload_len | payload_crc32``.
_HEADER = struct.Struct("<4sBBII")
_HEADER_LEN = _HEADER.size

#: Per-frame payload sanity cap.  Real frames are ~100 KB; anything
#: larger is treated as a corrupted length field so a single flipped
#: bit cannot make the decoder buffer an absurd amount of memory.
MAX_PAYLOAD = 1 << 24

#: How long a corrupt-region snippet handed to ``on_corrupt`` may get.
_SNIPPET = 120

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

_COMPACT = {"sort_keys": True, "separators": (",", ":")}


def sniff_wire2(prefix: bytes) -> bool:
    """Whether a stream prefix looks like a v2 frame stream."""
    return prefix[:4] == WIRE2_MAGIC


@dataclass(frozen=True)
class LookupColumns:
    """One RECORDS frame, decoded to columns.

    ``timestamps`` / ``server_ids`` / ``domain_ids`` are parallel numpy
    arrays (``float64`` / ``uint32`` / ``uint32``); ``servers`` and
    ``domains`` are the frame-scoped string tables the id columns index
    into.  :meth:`materialize` produces the exact
    :class:`~repro.dns.message.ForwardedLookup` sequence the equivalent
    v1 lines would decode to — the byte-identity anchor.
    """

    timestamps: np.ndarray
    server_ids: np.ndarray
    domain_ids: np.ndarray
    servers: tuple[str, ...]
    domains: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.timestamps)

    def materialize(self) -> list[ForwardedLookup]:
        """Per-record :class:`ForwardedLookup` objects, in frame order."""
        servers = self.servers
        domains = self.domains
        return [
            ForwardedLookup(t, servers[s], domains[d])
            for t, s, d in zip(
                self.timestamps.tolist(),
                self.server_ids.tolist(),
                self.domain_ids.tolist(),
            )
        ]


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def encode_frame(frame_type: int, payload: bytes) -> bytes:
    """One complete frame: header (with payload CRC) plus payload."""
    if len(payload) > MAX_PAYLOAD:
        raise ValueError(f"frame payload too large ({len(payload)} bytes)")
    return (
        _HEADER.pack(
            WIRE2_MAGIC, WIRE2_VERSION, frame_type, len(payload), zlib.crc32(payload)
        )
        + payload
    )


def _pack_strings(table: list[str]) -> bytes:
    parts = [_U32.pack(len(table))]
    for value in table:
        raw = value.encode("utf-8")
        parts.append(_U16.pack(len(raw)))
        parts.append(raw)
    return b"".join(parts)


def encode_records_frame(records: Iterable[ForwardedLookup]) -> bytes:
    """A RECORDS frame: frame-scoped string tables plus three columns."""
    servers: dict[str, int] = {}
    domains: dict[str, int] = {}
    ts: list[float] = []
    sid: list[int] = []
    did: list[int] = []
    for record in records:
        ts.append(record.timestamp)
        index = servers.get(record.server)
        if index is None:
            index = servers.setdefault(record.server, len(servers))
        sid.append(index)
        index = domains.get(record.domain)
        if index is None:
            index = domains.setdefault(record.domain, len(domains))
        did.append(index)
    payload = b"".join(
        (
            _U32.pack(len(ts)),
            _pack_strings(list(servers)),
            _pack_strings(list(domains)),
            np.asarray(ts, dtype="<f8").tobytes(),
            np.asarray(sid, dtype="<u4").tobytes(),
            np.asarray(did, dtype="<u4").tobytes(),
        )
    )
    return encode_frame(FRAME_RECORDS, payload)


def encode_meta_frame(header: Mapping[str, Any]) -> bytes:
    """A META frame carrying the v1 header object verbatim."""
    return encode_frame(
        FRAME_META, json.dumps(dict(header), **_COMPACT).encode("utf-8")
    )


def encode_quarantine_frame(line: str, reason: str) -> bytes:
    """A QUARANTINE frame: a corrupt v1 line carried with its reason."""
    raw_reason = reason.encode("utf-8")
    payload = _U32.pack(len(raw_reason)) + raw_reason + line.encode("utf-8")
    return encode_frame(FRAME_QUARANTINE, payload)


class Wire2Writer:
    """Streaming v2 encoder with per-frame record batching.

    Records accumulate until ``frame_records`` of them (or an explicit
    :meth:`flush`) close a RECORDS frame.  Corrupt lines *flush first*,
    so the quarantine frame lands at the record position the source
    stream had it — which is what keeps the daemon's per-emission
    quarantine attribution identical across formats.
    """

    def __init__(self, fh: IO[bytes], frame_records: int = 4096) -> None:
        self._fh = fh
        self.frame_records = max(1, int(frame_records))
        self._pending: list[ForwardedLookup] = []
        self.records = 0
        self.frames = 0

    def _emit(self, frame: bytes) -> None:
        self._fh.write(frame)
        self.frames += 1

    def write_header(self, header: Mapping[str, Any]) -> None:
        self.flush()
        self._emit(encode_meta_frame(header))

    def add(self, record: ForwardedLookup) -> None:
        self._pending.append(record)
        self.records += 1
        if len(self._pending) >= self.frame_records:
            self.flush()

    def add_corrupt(self, line: str, reason: str) -> None:
        self.flush()
        self._emit(encode_quarantine_frame(line, reason))

    def flush(self) -> None:
        if self._pending:
            self._emit(encode_records_frame(self._pending))
            self._pending = []

    def close(self) -> None:
        self.flush()


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


class Wire2BatchDecoder:
    """Chunk-oriented v2 decoder sharing the v1 counted-skip policy.

    Feed it arbitrary byte chunks (any split — mid-frame boundaries
    included); it reassembles frames and drives a regular
    :class:`~repro.service.wire.NdjsonReader`'s counters, header slot,
    quarantine sink and corrupt budget, so the daemon's accounting is
    wire-format-independent.

    :meth:`iter_events` is the primitive: it yields, in stream order,

    * ``("columns", LookupColumns)`` — one decoded RECORDS frame;
    * ``("header", dict)`` — a META frame (also stored on the reader);
    * ``("corrupt", line, reason)`` — one charged corrupt event (a
      carried QUARANTINE line, or a quarantined byte region).

    ``consumed`` counts the bytes of every fully decoded frame and every
    *closed* corrupt region — the durable stream offset the daemon
    checkpoints.  An open corrupt region (no next magic seen yet) and a
    partial trailing frame are held back; :meth:`flush` settles them at
    stream end (``complete=False`` applies the reader's truncated-tail
    policy and retains the bytes for retry).
    """

    def __init__(
        self,
        reader: NdjsonReader | None = None,
        *,
        max_corrupt: int | None = None,
        on_corrupt: Any = None,
    ) -> None:
        self.reader = (
            reader
            if reader is not None
            else NdjsonReader(max_corrupt=max_corrupt, on_corrupt=on_corrupt)
        )
        self._buf = bytearray()
        self.consumed = 0
        # An open corrupt region: bytes discarded so far, the snippet we
        # kept for the quarantine sink, and the reason that opened it.
        self._junk_open = False
        self._junk_len = 0
        self._junk_head = b""
        self._junk_reason = ""

    @property
    def pending(self) -> int:
        """Bytes held back (partial frame or open corrupt region)."""
        return len(self._buf) + self._junk_len

    # -- corrupt-region bookkeeping -------------------------------------------

    def _open_junk(self, reason: str, absorb: int = 0) -> None:
        self._junk_open = True
        self._junk_reason = reason
        if absorb:
            self._absorb_junk(absorb)

    def _absorb_junk(self, n_bytes: int) -> None:
        if n_bytes <= 0:
            return
        if len(self._junk_head) < _SNIPPET:
            self._junk_head += bytes(self._buf[: min(n_bytes, _SNIPPET)])[
                : _SNIPPET - len(self._junk_head)
            ]
        self._junk_len += n_bytes
        del self._buf[:n_bytes]

    def _close_junk(self) -> tuple[str, str, str]:
        snippet = repr(self._junk_head[:_SNIPPET])
        reason = f"{self._junk_reason} ({self._junk_len} bytes quarantined)"
        self.consumed += self._junk_len
        self._junk_open = False
        self._junk_len = 0
        self._junk_head = b""
        self._junk_reason = ""
        self.reader._corrupt_line(snippet, reason)
        return ("corrupt", snippet, reason)

    def _charge_frame(self, payload: bytes, reason: str) -> tuple[str, str, str]:
        snippet = repr(payload[:_SNIPPET])
        self.reader._corrupt_line(snippet, reason)
        return ("corrupt", snippet, reason)

    # -- frame parsing ---------------------------------------------------------

    def _parse_records(self, payload: bytes) -> LookupColumns:
        off = 0

        def _u32() -> int:
            nonlocal off
            value = _U32.unpack_from(payload, off)[0]
            off += 4
            return value

        def _strings() -> tuple[str, ...]:
            nonlocal off
            count = _u32()
            if count > len(payload):
                raise ValueError("string table longer than payload")
            table = []
            for _ in range(count):
                length = _U16.unpack_from(payload, off)[0]
                off += 2
                table.append(payload[off : off + length].decode("utf-8"))
                off += length
            return tuple(table)

        n = _u32()
        if n > len(payload):
            raise ValueError("record count longer than payload")
        servers = _strings()
        domains = _strings()
        need = off + 16 * n
        if need != len(payload):
            raise ValueError(
                f"column section is {len(payload) - off} bytes, expected {16 * n}"
            )
        ts = np.frombuffer(payload, dtype="<f8", count=n, offset=off)
        sid = np.frombuffer(payload, dtype="<u4", count=n, offset=off + 8 * n)
        did = np.frombuffer(payload, dtype="<u4", count=n, offset=off + 12 * n)
        if n:
            if int(sid.max()) >= len(servers):
                raise ValueError("server id out of table range")
            if int(did.max()) >= len(domains):
                raise ValueError("domain id out of table range")
        return LookupColumns(ts, sid, did, servers, domains)

    def _decode_frame(self, frame_type: int, payload: bytes) -> tuple:
        if frame_type == FRAME_RECORDS:
            try:
                columns = self._parse_records(payload)
            except (ValueError, struct.error, UnicodeDecodeError) as exc:
                return self._charge_frame(payload, f"malformed records frame: {exc}")
            self.reader.records += len(columns)
            return ("columns", columns)
        if frame_type == FRAME_META:
            try:
                data = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                return self._charge_frame(payload, f"malformed meta frame: {exc}")
            if not isinstance(data, dict):
                return self._charge_frame(payload, "meta frame is not an object")
            self.reader.header = data
            return ("header", data)
        # FRAME_QUARANTINE — a carried corrupt v1 line.
        try:
            (reason_len,) = _U32.unpack_from(payload, 0)
            reason = payload[4 : 4 + reason_len].decode("utf-8")
            line = payload[4 + reason_len :].decode("utf-8")
        except (struct.error, UnicodeDecodeError, IndexError) as exc:
            return self._charge_frame(payload, f"malformed quarantine frame: {exc}")
        self.reader._corrupt_line(line, reason)
        return ("corrupt", line, reason)

    # -- the chunk interface ---------------------------------------------------

    def iter_events(self, chunk: bytes) -> Iterator[tuple]:
        """Decode one chunk lazily, yielding events in stream order.

        ``consumed`` and the reader's counters advance as the iterator
        is drained — frame by frame — so a caller can checkpoint at any
        event boundary with a durable offset.
        """
        self._buf += chunk
        buf = self._buf
        while True:
            if self._junk_open:
                index = buf.find(WIRE2_MAGIC)
                if index < 0:
                    # Keep a possible magic prefix; the rest is junk.
                    self._absorb_junk(len(buf) - min(len(buf), 3))
                    return
                self._absorb_junk(index)
                yield self._close_junk()
                continue
            if len(buf) < _HEADER_LEN:
                if len(buf) >= 4 and bytes(buf[:4]) != WIRE2_MAGIC:
                    self._open_junk("bad frame magic")
                    continue
                return
            magic, version, frame_type, length, crc = _HEADER.unpack_from(buf, 0)
            if magic != WIRE2_MAGIC:
                self._open_junk("bad frame magic")
                continue
            if version != WIRE2_VERSION:
                self._open_junk(f"unsupported wire2 version {version}", absorb=4)
                continue
            if frame_type not in _KNOWN_FRAMES:
                self._open_junk(f"unknown frame type {frame_type}", absorb=4)
                continue
            if length > MAX_PAYLOAD:
                self._open_junk(f"frame payload too large ({length})", absorb=4)
                continue
            if len(buf) < _HEADER_LEN + length:
                return
            payload = bytes(buf[_HEADER_LEN : _HEADER_LEN + length])
            del buf[: _HEADER_LEN + length]
            self.consumed += _HEADER_LEN + length
            if zlib.crc32(payload) != crc:
                # The frame boundary came from the (untrusted) length
                # field; if *it* was what flipped, the scan-for-magic
                # path recovers at the next real frame.
                yield self._charge_frame(payload, "frame crc mismatch")
                continue
            yield self._decode_frame(frame_type, payload)

    def push_events(self, chunk: bytes) -> list[tuple]:
        """Eager :meth:`iter_events`."""
        return list(self.iter_events(chunk))

    def push_columns(self, chunk: bytes) -> list[LookupColumns]:
        """Decode one chunk; return its complete RECORDS frames."""
        return [event[1] for event in self.iter_events(chunk) if event[0] == "columns"]

    def iter_push(self, chunk: bytes) -> Iterator[ForwardedLookup]:
        """Record-at-a-time compatibility shim over :meth:`iter_events`."""
        for event in self.iter_events(chunk):
            if event[0] == "columns":
                yield from event[1].materialize()

    def flush(self, complete: bool = True) -> list[tuple]:
        """Settle held bytes at stream end (or probe a live tail).

        ``complete=True``: an open corrupt region or a partial trailing
        frame becomes one final corrupt event and is consumed.
        ``complete=False``: the bytes may still be in flight — count one
        ``truncated_tail`` (the retriable probe, exactly v1's policy)
        and keep everything for the next push.
        """
        if not self._buf and not self._junk_open:
            return []
        if not complete:
            self.reader.truncated_tail += 1
            return []
        if not self._junk_open:
            self._open_junk("truncated trailing frame")
        self._absorb_junk(len(self._buf))
        return [self._close_junk()]


# ---------------------------------------------------------------------------
# Conversion (NDJSON <-> v2)
# ---------------------------------------------------------------------------


def ndjson_to_wire2(
    lines: Iterable[bytes | str], out: IO[bytes], frame_records: int = 4096
) -> NdjsonReader:
    """Convert a v1 NDJSON stream to v2 frames; returns the classifier.

    Every line is classified by a real :class:`NdjsonReader`, so the
    corrupt taxonomy (and therefore the replayed skip accounting) is
    identical to decoding the original: headers become META frames,
    lookups batch into RECORDS frames, corrupt lines become QUARANTINE
    frames *at their stream position*.  Blank lines vanish — they carry
    no accounting that reaches the landscape stream.
    """
    corrupt: list[tuple[str, str]] = []
    reader = NdjsonReader(on_corrupt=lambda line, why: corrupt.append((line, why)))
    writer = Wire2Writer(out, frame_records=frame_records)
    header_written = False
    for line in lines:
        record = reader.feed(line)
        if corrupt:
            for quarantined, why in corrupt:
                writer.add_corrupt(quarantined, why)
            corrupt.clear()
        if reader.header is not None and not header_written:
            writer.write_header(reader.header)
            header_written = True
        if record is not None:
            writer.add(record)
    writer.close()
    return reader


def wire2_to_ndjson_lines(data: bytes) -> list[bytes]:
    """Convert v2 frames back to v1 NDJSON lines (no trailing newlines).

    Headers and lookups re-encode through the canonical v1 encoders
    (compact, sorted keys — what ``export-trace`` writes, so a clean
    round-trip is byte-exact); QUARANTINE frames restore their carried
    line verbatim.  Quarantined byte *regions* (a torn v2 file) surface
    as their snippet, keeping the corrupt count faithful.
    """
    decoder = Wire2BatchDecoder(NdjsonReader())
    lines: list[bytes] = []
    events = decoder.push_events(data)
    events.extend(decoder.flush(complete=True))
    for event in events:
        if event[0] == "columns":
            lines.extend(
                encode_record(record).encode("utf-8")
                for record in event[1].materialize()
            )
        elif event[0] == "header":
            lines.append(json.dumps(event[1], **_COMPACT).encode("utf-8"))
        else:  # ("corrupt", line, reason)
            lines.append(event[1].encode("utf-8"))
    return lines
