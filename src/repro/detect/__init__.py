"""D3 (DGA-domain detection) substrate: detection-window oracle used by
the evaluation (§II-B, Figure 6e) and a working lexical classifier."""

from .d3 import OracleDetector, build_detection_windows
from .lexical import LexicalDetector, label_entropy

__all__ = [
    "OracleDetector",
    "build_detection_windows",
    "LexicalDetector",
    "label_entropy",
]
