"""D3 (DGA-domain detection) abstraction (§II-B).

BotMeter consumes *confirmed* DGA domains produced by some upstream D3
algorithm.  A perfect D3 knows the full daily pool; a realistic one has a
limited **detection window** (it misses a fraction of the pool) and may
suffer **collision cases** (pool domains that coincide with valid
benign domains).  :class:`OracleDetector` models both effects on top of a
ground-truth DGA, which is how the paper evaluates Figure 6(e).
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterable

import numpy as np

from ..dga.base import Dga
from ..timebase import Timeline

__all__ = ["OracleDetector", "build_detection_windows"]


class OracleDetector:
    """A D3 algorithm with a configurable miss rate.

    Every day it reports each DGA NXD independently with probability
    ``1 − miss_rate`` (the paper's "D3 randomly misses x percent of
    DGA-NXDs").  Deterministic per ``(seed, day)`` so repeated queries
    agree.

    ``collisions`` optionally lists benign domains wrongly attributed to
    the DGA — these are included in every day's window and make the
    matcher pick up benign traffic, modelling collision cases.
    """

    def __init__(
        self,
        dga: Dga,
        miss_rate: float = 0.0,
        seed: int = 0,
        collisions: Iterable[str] = (),
    ) -> None:
        if not 0 <= miss_rate < 1:
            raise ValueError(f"miss_rate must be in [0, 1), got {miss_rate}")
        self._dga = dga
        self._miss_rate = miss_rate
        self._seed = seed
        self._collisions = frozenset(collisions)

    @property
    def miss_rate(self) -> float:
        return self._miss_rate

    def detected_nxds(self, day: _dt.date) -> frozenset[str]:
        """The DGA NXDs the detector reports for ``day`` (plus collisions)."""
        nxds = self._dga.nxdomains(day)
        if self._miss_rate == 0.0:
            return frozenset(nxds) | self._collisions
        rng = np.random.default_rng((self._seed, day.toordinal()))
        keep = rng.random(len(nxds)) >= self._miss_rate
        return frozenset(d for d, k in zip(nxds, keep) if k) | self._collisions


def build_detection_windows(
    detector: OracleDetector, timeline: Timeline, day_indices: Iterable[int]
) -> dict[int, frozenset[str]]:
    """Materialise per-day-index detection windows for matcher/context use."""
    return {
        day: detector.detected_nxds(timeline.date_for_day(day))
        for day in day_indices
    }
