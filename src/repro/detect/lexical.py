"""A working lexical D3 classifier.

The paper assumes an off-the-shelf D3 algorithm (Yadav et al.'s
character-distribution detector, reverse engineering, NXD clustering...).
This module provides a functional instance: a character-bigram
naive-Bayes classifier over domain labels, in the spirit of Yadav et
al.'s alphanumeric-distribution features.  Trained on samples of benign
and DGA labels, it scores unseen domains by bigram log-likelihood ratio
plus simple shape features (length, character entropy).

It exists so the library can demonstrate a *complete* pipeline — raw
stream → D3 → BotMeter — without any oracle; the evaluation harnesses
still use :class:`repro.detect.d3.OracleDetector` to control the miss
rate exactly, as the paper does.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

__all__ = ["LexicalDetector", "label_entropy"]

_BOUNDARY = "^"


def _primary_label(domain: str) -> str:
    """The registered label of a domain (leftmost of the e2LD)."""
    parts = [p for p in domain.strip().lower().strip(".").split(".") if p.strip()]
    if not parts:
        raise ValueError(f"cannot extract a label from {domain!r}")
    return parts[0].strip()


def label_entropy(label: str) -> float:
    """Shannon entropy (bits/char) of a label's character distribution."""
    if not label:
        return 0.0
    counts = Counter(label)
    total = len(label)
    return -sum((c / total) * math.log2(c / total) for c in counts.values())


def _bigrams(label: str) -> list[str]:
    padded = _BOUNDARY + label + _BOUNDARY
    return [padded[i : i + 2] for i in range(len(padded) - 1)]


class _BigramModel:
    """Add-one-smoothed bigram log-probabilities over labels."""

    def __init__(self, labels: Iterable[str]) -> None:
        self._counts: Counter[str] = Counter()
        self._context: Counter[str] = Counter()
        vocabulary: set[str] = set()
        for label in labels:
            for bigram in _bigrams(label):
                self._counts[bigram] += 1
                self._context[bigram[0]] += 1
                vocabulary.add(bigram[1])
        self._vocab_size = max(len(vocabulary), 1)

    def log_likelihood(self, label: str) -> float:
        """Mean per-bigram log-probability of ``label`` under the model."""
        grams = _bigrams(label)
        total = 0.0
        for bigram in grams:
            numerator = self._counts.get(bigram, 0) + 1
            denominator = self._context.get(bigram[0], 0) + self._vocab_size
            total += math.log(numerator / denominator)
        return total / len(grams)


class LexicalDetector:
    """Bigram naive-Bayes DGA-domain classifier.

    Scores a domain by the difference between its label's mean bigram
    log-likelihood under the DGA model and under the benign model; a
    positive margin above ``threshold`` classifies it as DGA-generated.
    """

    def __init__(self, threshold: float = 0.0) -> None:
        self._threshold = threshold
        self._benign: _BigramModel | None = None
        self._dga: _BigramModel | None = None

    @property
    def is_fitted(self) -> bool:
        return self._benign is not None and self._dga is not None

    def fit(self, benign_domains: Sequence[str], dga_domains: Sequence[str]) -> "LexicalDetector":
        """Train both bigram models; returns self for chaining."""
        if not benign_domains or not dga_domains:
            raise ValueError("need non-empty benign and DGA training sets")
        self._benign = _BigramModel(_primary_label(d) for d in benign_domains)
        self._dga = _BigramModel(_primary_label(d) for d in dga_domains)
        return self

    def score(self, domain: str) -> float:
        """DGA-ness margin; positive means more DGA-like than benign.

        Domains with no extractable label (empty, whitespace, dot-only)
        score ``-inf`` — maximally benign — instead of raising; a live
        stream contains such junk and a classifier must absorb it.
        """
        if not self.is_fitted:
            raise RuntimeError("detector must be fitted before scoring")
        try:
            label = _primary_label(domain)
        except ValueError:
            return float("-inf")
        assert self._dga is not None and self._benign is not None
        return self._dga.log_likelihood(label) - self._benign.log_likelihood(label)

    def is_dga(self, domain: str) -> bool:
        """Whether ``domain`` scores above the DGA threshold."""
        return self.score(domain) > self._threshold

    def detect(self, domains: Iterable[str]) -> set[str]:
        """The subset of ``domains`` classified as DGA-generated."""
        return {d for d in domains if self.is_dga(d)}

    def evaluate(
        self, benign_domains: Sequence[str], dga_domains: Sequence[str]
    ) -> dict[str, float]:
        """True/false-positive rates on labelled held-out sets."""
        if not benign_domains or not dga_domains:
            raise ValueError("need non-empty evaluation sets")
        tp = sum(1 for d in dga_domains if self.is_dga(d))
        fp = sum(1 for d in benign_domains if self.is_dga(d))
        return {
            "true_positive_rate": tp / len(dga_domains),
            "false_positive_rate": fp / len(benign_domains),
        }
