"""Shared simulation time base.

Simulation time is ``float`` seconds from an origin midnight.  A
:class:`Timeline` anchors that origin to a calendar date so day-seeded
DGAs, day-scoped caches, and daily ground truth all agree on what "today"
means.
"""

from __future__ import annotations

import datetime as _dt
import math
from dataclasses import dataclass

__all__ = ["SECONDS_PER_DAY", "SECONDS_PER_HOUR", "Timeline", "quantize"]

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_HOUR = 3_600.0


def quantize(timestamp: float, granularity: float) -> float:
    """Round ``timestamp`` down to a multiple of ``granularity``.

    Models the coarse timestamping of real DNS collection points (100 ms
    in the synthetic evaluation, 1 s in the enterprise trace).  A
    non-positive granularity leaves the timestamp untouched.
    """
    if granularity <= 0:
        return timestamp
    return math.floor(timestamp / granularity) * granularity


@dataclass(frozen=True)
class Timeline:
    """Maps simulation seconds to calendar days.

    ``origin`` is the calendar date of simulation second 0; every epoch
    (day) boundary falls on a multiple of :data:`SECONDS_PER_DAY`.
    """

    origin: _dt.date = _dt.date(2014, 5, 1)

    def date_of(self, timestamp: float) -> _dt.date:
        """Calendar date containing ``timestamp``."""
        if timestamp < 0:
            raise ValueError(f"timestamp must be >= 0, got {timestamp}")
        return self.origin + _dt.timedelta(days=int(timestamp // SECONDS_PER_DAY))

    def day_index(self, timestamp: float) -> int:
        """Zero-based day number containing ``timestamp``."""
        if timestamp < 0:
            raise ValueError(f"timestamp must be >= 0, got {timestamp}")
        return int(timestamp // SECONDS_PER_DAY)

    def start_of_day(self, day_index: int) -> float:
        """Simulation second at which day ``day_index`` begins."""
        return day_index * SECONDS_PER_DAY

    def date_for_day(self, day_index: int) -> _dt.date:
        """Calendar date of day ``day_index``."""
        return self.origin + _dt.timedelta(days=day_index)
