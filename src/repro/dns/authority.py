"""Authoritative resolution for the simulated Internet.

The simulator needs a single oracle that says, for any domain at any
simulation time, whether it resolves (NOERROR) or not (NXDOMAIN) and with
what TTL.  :class:`RegistrationAuthority` composes:

* time-varying C2 registrations contributed by DGA botmasters (a domain
  is valid only on the days it is registered), and
* a static set of benign, always-valid domains.

Everything else is NXDOMAIN.
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, Iterable, Protocol

from .message import RCode, Response

__all__ = ["Resolver", "RegistrationAuthority", "StaticResolver"]


class Resolver(Protocol):
    """Anything that can authoritatively resolve a domain at a time."""

    def resolve(self, domain: str, day: _dt.date) -> Response:
        """Return the authoritative answer for ``domain`` on ``day``."""
        ...


class StaticResolver:
    """A fixed valid-domain set — convenient for unit tests."""

    def __init__(
        self,
        valid: Iterable[str],
        positive_ttl: float = 86_400.0,
        negative_ttl: float = 7_200.0,
    ) -> None:
        self._valid = frozenset(valid)
        self._positive_ttl = positive_ttl
        self._negative_ttl = negative_ttl

    def resolve(self, domain: str, day: _dt.date) -> Response:
        """Answer from the static valid set (day is ignored)."""
        if domain in self._valid:
            return Response(domain, RCode.NOERROR, self._positive_ttl)
        return Response(domain, RCode.NXDOMAIN, self._negative_ttl)


class RegistrationAuthority:
    """Day-aware authority combining benign domains and C2 registrations.

    Registration providers are callables ``day -> set[str]`` (typically a
    bound :meth:`repro.dga.base.Dga.registered`); their unions form the
    day's valid C2 set.  Results are cached per day because botnet
    simulations resolve the same day's domains millions of times.
    """

    def __init__(
        self,
        benign: Iterable[str] = (),
        positive_ttl: float = 86_400.0,
        negative_ttl: float = 7_200.0,
    ) -> None:
        if positive_ttl <= 0 or negative_ttl <= 0:
            raise ValueError("TTLs must be positive")
        self._benign = frozenset(benign)
        self._providers: list[Callable[[_dt.date], set[str]]] = []
        self._positive_ttl = positive_ttl
        self._negative_ttl = negative_ttl
        self._day_cache: tuple[_dt.date, frozenset[str]] | None = None

    @property
    def positive_ttl(self) -> float:
        return self._positive_ttl

    @property
    def negative_ttl(self) -> float:
        return self._negative_ttl

    def add_registration_provider(self, provider: Callable[[_dt.date], set[str]]) -> None:
        """Register a botmaster: a per-day supplier of valid C2 domains."""
        self._providers.append(provider)
        self._day_cache = None

    def add_benign(self, domains: Iterable[str]) -> None:
        """Add always-valid benign domains."""
        self._benign = self._benign | frozenset(domains)

    def valid_on(self, day: _dt.date) -> frozenset[str]:
        """All domains that resolve on ``day`` (benign plus registered C2)."""
        if self._day_cache is not None and self._day_cache[0] == day:
            return self._day_cache[1]
        registered: set[str] = set()
        for provider in self._providers:
            registered |= provider(day)
        valid = frozenset(self._benign | registered)
        self._day_cache = (day, valid)
        return valid

    def resolve(self, domain: str, day: _dt.date) -> Response:
        """Answer authoritatively for ``domain`` on ``day``."""
        if domain in self.valid_on(day):
            return Response(domain, RCode.NOERROR, self._positive_ttl)
        return Response(domain, RCode.NXDOMAIN, self._negative_ttl)
