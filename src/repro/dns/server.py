"""Caching-and-forwarding DNS servers (Figure 1).

A :class:`LocalDnsServer` answers client lookups from its cache when it
can and forwards misses upstream; the :class:`BorderDnsServer` resolves
forwarded queries authoritatively and — acting as the vantage point —
records every forwarded lookup it sees, with timestamps quantised to the
collection granularity.
"""

from __future__ import annotations

from .authority import Resolver
from .cache import DnsCache
from .message import ForwardedLookup, RCode, Response
from ..timebase import Timeline, quantize

__all__ = ["BorderDnsServer", "LocalDnsServer"]


class BorderDnsServer:
    """The upper-level DNS server where BotMeter taps the traffic.

    It resolves every forwarded query through the authoritative
    ``resolver`` and appends a ``⟨t, s, d⟩`` tuple to :attr:`observed`.
    Border-side caching is intentionally *not* modelled: the paper's
    vantage point sees every lookup forwarded by the local layer.
    """

    def __init__(
        self,
        resolver: Resolver,
        timeline: Timeline | None = None,
        timestamp_granularity: float = 0.1,
    ) -> None:
        if timestamp_granularity < 0:
            raise ValueError("timestamp granularity must be >= 0")
        self._resolver = resolver
        self._timeline = timeline or Timeline()
        self._granularity = timestamp_granularity
        self.observed: list[ForwardedLookup] = []

    @property
    def timeline(self) -> Timeline:
        return self._timeline

    def query(self, domain: str, now: float, forwarder: str) -> Response:
        """Resolve a forwarded lookup and record it at the vantage point."""
        self.observed.append(
            ForwardedLookup(quantize(now, self._granularity), forwarder, domain)
        )
        return self._resolver.resolve(domain, self._timeline.date_of(now))

    def drain_observed(self) -> list[ForwardedLookup]:
        """Return and clear the recorded vantage-point stream."""
        observed, self.observed = self.observed, []
        return observed


class LocalDnsServer:
    """A lower-level caching forwarder serving one subnet.

    Positive and negative answers are cached with the TTLs carried in the
    upstream response (optionally clamped by ``max_negative_ttl`` /
    ``max_positive_ttl``, mirroring resolver configuration knobs) so the
    paper's experiments can vary the *local* negative-cache TTL
    independently of the authority's.
    """

    def __init__(
        self,
        server_id: str,
        upstream: BorderDnsServer,
        max_negative_ttl: float | None = None,
        max_positive_ttl: float | None = None,
    ) -> None:
        self.server_id = server_id
        self._upstream = upstream
        self._cache = DnsCache()
        self._max_negative_ttl = max_negative_ttl
        self._max_positive_ttl = max_positive_ttl

    @property
    def cache(self) -> DnsCache:
        return self._cache

    def _effective_ttl(self, response: Response) -> float:
        cap = (
            self._max_negative_ttl
            if response.is_nxdomain
            else self._max_positive_ttl
        )
        if cap is None:
            return response.ttl
        return min(response.ttl, cap)

    def query(self, domain: str, now: float) -> RCode:
        """Answer a client lookup, forwarding upstream on a cache miss."""
        cached = self._cache.get(domain, now)
        if cached is not None:
            return cached
        response = self._upstream.query(domain, now, self.server_id)
        self._cache.put(domain, response.rcode, now, self._effective_ttl(response))
        return response.rcode

    def flush_cache(self) -> None:
        """Drop every cached answer (server restart)."""
        self._cache.flush()
