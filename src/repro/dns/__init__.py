"""DNS substrate: messages, positive/negative caching, caching-and-
forwarding servers, and the hierarchical wiring of Figure 1."""

from .authority import RegistrationAuthority, Resolver, StaticResolver
from .cache import CacheEntry, DnsCache
from .hierarchy import DnsHierarchy
from .message import ForwardedLookup, Lookup, RCode, Response
from .multitier import ForwarderNode, TieredBorder, TieredDnsNetwork
from .server import BorderDnsServer, LocalDnsServer

__all__ = [
    "RegistrationAuthority",
    "Resolver",
    "StaticResolver",
    "CacheEntry",
    "DnsCache",
    "DnsHierarchy",
    "ForwardedLookup",
    "Lookup",
    "RCode",
    "Response",
    "BorderDnsServer",
    "LocalDnsServer",
    "ForwarderNode",
    "TieredBorder",
    "TieredDnsNetwork",
]
