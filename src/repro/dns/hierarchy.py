"""Hierarchical DNS wiring (Figure 1): clients → local servers → border.

:class:`DnsHierarchy` owns one border server (the vantage point) and any
number of local caching forwarders, plus the client → local-server
assignment.  The botnet/network simulators drive it by calling
:meth:`lookup` for every client-issued query in timestamp order.
"""

from __future__ import annotations

from .authority import Resolver
from .message import ForwardedLookup, RCode
from .server import BorderDnsServer, LocalDnsServer
from ..timebase import Timeline

__all__ = ["DnsHierarchy"]


class DnsHierarchy:
    """An enterprise DNS tree with caching-and-forwarding local servers."""

    def __init__(
        self,
        resolver: Resolver,
        n_local_servers: int = 1,
        timeline: Timeline | None = None,
        timestamp_granularity: float = 0.1,
        negative_ttl: float = 7_200.0,
        positive_ttl: float = 86_400.0,
        server_prefix: str = "ldns",
    ) -> None:
        if n_local_servers < 1:
            raise ValueError(f"need at least one local server, got {n_local_servers}")
        self.border = BorderDnsServer(resolver, timeline, timestamp_granularity)
        self.locals: dict[str, LocalDnsServer] = {}
        for i in range(n_local_servers):
            server_id = f"{server_prefix}-{i:03d}"
            self.locals[server_id] = LocalDnsServer(
                server_id,
                self.border,
                max_negative_ttl=negative_ttl,
                max_positive_ttl=positive_ttl,
            )
        self._assignments: dict[str, str] = {}

    @property
    def server_ids(self) -> list[str]:
        return sorted(self.locals)

    def assign_client(self, client: str, server_id: str) -> None:
        """Pin ``client`` to a specific local server."""
        if server_id not in self.locals:
            raise KeyError(f"unknown local server {server_id!r}")
        self._assignments[client] = server_id

    def server_for(self, client: str) -> LocalDnsServer:
        """The local server that resolves for ``client``.

        Unassigned clients are hashed onto a server deterministically so
        ad-hoc simulations need no explicit assignment step.
        """
        server_id = self._assignments.get(client)
        if server_id is None:
            ids = self.server_ids
            server_id = ids[hash(client) % len(ids)]
            self._assignments[client] = server_id
        return self.locals[server_id]

    def lookup(self, client: str, domain: str, now: float) -> RCode:
        """Resolve one client lookup through the hierarchy."""
        return self.server_for(client).query(domain, now)

    def drain_observed(self) -> list[ForwardedLookup]:
        """Return and clear the vantage-point stream collected so far."""
        return self.border.drain_observed()

    def flush_caches(self) -> None:
        """Flush every local cache (e.g. between independent trials)."""
        for server in self.locals.values():
            server.flush_cache()
