"""Multi-tier DNS hierarchies.

The paper's setting (Figure 1) has two levels — local caching forwarders
and a border server.  Large networks often interpose *regional*
forwarders between them ("complicated DNS infrastructures", §I), each
with its own cache.  This module models an arbitrary-depth
caching-forwarding chain and exposes the property that matters to
BotMeter: the vantage point sees traffic aggregated (and further
cache-filtered) at the granularity of the *top-most forwarding tier*,
so landscapes are charted per regional subtree instead of per leaf.

Key semantics:

* every tier caches positives and negatives with its own TTL caps;
* a lookup missed at a leaf may still be absorbed by an ancestor's cache
  (cross-subnet masking), so deeper trees forward strictly less;
* the ``⟨t, s, d⟩`` tuples at the border carry the *direct child* of the
  border as the forwarding server.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..timebase import Timeline, quantize
from .authority import Resolver
from .cache import DnsCache
from .message import ForwardedLookup, RCode, Response

__all__ = ["ForwarderNode", "TieredBorder", "TieredDnsNetwork"]


class TieredBorder:
    """Root of a tiered hierarchy: authoritative resolution + vantage point."""

    def __init__(
        self,
        resolver: Resolver,
        timeline: Timeline | None = None,
        timestamp_granularity: float = 0.1,
    ) -> None:
        self._resolver = resolver
        self._timeline = timeline or Timeline()
        self._granularity = timestamp_granularity
        self.observed: list[ForwardedLookup] = []

    @property
    def timeline(self) -> Timeline:
        return self._timeline

    def resolve_from(self, child_id: str, domain: str, now: float) -> Response:
        """Resolve a forwarded query and record it at the vantage point."""
        self.observed.append(
            ForwardedLookup(quantize(now, self._granularity), child_id, domain)
        )
        return self._resolver.resolve(domain, self._timeline.date_of(now))

    def drain_observed(self) -> list[ForwardedLookup]:
        """Return and clear the vantage-point stream."""
        observed, self.observed = self.observed, []
        return observed


class ForwarderNode:
    """One caching forwarder in the chain (leaf or intermediate)."""

    def __init__(
        self,
        node_id: str,
        upstream: "ForwarderNode | TieredBorder",
        max_negative_ttl: float | None = None,
        max_positive_ttl: float | None = None,
    ) -> None:
        self.node_id = node_id
        self._upstream = upstream
        self._cache = DnsCache()
        self._max_negative_ttl = max_negative_ttl
        self._max_positive_ttl = max_positive_ttl

    @property
    def cache(self) -> DnsCache:
        return self._cache

    @property
    def upstream(self) -> "ForwarderNode | TieredBorder":
        return self._upstream

    def _effective_ttl(self, response: Response) -> float:
        cap = (
            self._max_negative_ttl if response.is_nxdomain else self._max_positive_ttl
        )
        return response.ttl if cap is None else min(response.ttl, cap)

    def resolve_from(self, _child_id: str, domain: str, now: float) -> Response:
        """Serve a downstream forwarder (intermediate-tier role)."""
        cached = self._cache.get(domain, now)
        if cached is not None:
            # Answer from cache; the TTL granted downstream is our cap
            # (a simplification: real resolvers grant the remaining TTL).
            ttl = (
                self._max_negative_ttl
                if cached is RCode.NXDOMAIN
                else self._max_positive_ttl
            )
            return Response(domain, cached, ttl if ttl is not None else 0.0)
        response = self._upstream.resolve_from(self.node_id, domain, now)
        self._cache.put(domain, response.rcode, now, self._effective_ttl(response))
        return response

    def query(self, domain: str, now: float) -> RCode:
        """Serve an end client (leaf role)."""
        return self.resolve_from("client", domain, now).rcode

    def flush_cache(self) -> None:
        """Drop every cached answer at this node."""
        self._cache.flush()


class TieredDnsNetwork:
    """A symmetric tree: border ← tier-1 regionals ← … ← leaves ← clients.

    Args:
        resolver: authoritative oracle.
        fanouts: children per node at each depth; ``(3, 4)`` builds 3
            regional forwarders with 4 leaves each (12 leaf subnets).
        negative_ttl / positive_ttl: TTL caps applied at *every* tier.
    """

    def __init__(
        self,
        resolver: Resolver,
        fanouts: Sequence[int] = (3, 4),
        timeline: Timeline | None = None,
        timestamp_granularity: float = 0.1,
        negative_ttl: float = 7_200.0,
        positive_ttl: float = 86_400.0,
    ) -> None:
        if not fanouts or any(f < 1 for f in fanouts):
            raise ValueError("fanouts must be a non-empty sequence of positives")
        self.border = TieredBorder(resolver, timeline, timestamp_granularity)
        self.tiers: list[list[ForwarderNode]] = []
        parents: list[ForwarderNode | TieredBorder] = [self.border]
        for depth, fanout in enumerate(fanouts):
            tier: list[ForwarderNode] = []
            for parent_index, parent in enumerate(parents):
                for child_index in range(fanout):
                    if isinstance(parent, TieredBorder):
                        node_id = f"t{depth}-{child_index:02d}"
                    else:
                        node_id = f"{parent.node_id}.{child_index:02d}"
                    tier.append(
                        ForwarderNode(
                            node_id,
                            parent,
                            max_negative_ttl=negative_ttl,
                            max_positive_ttl=positive_ttl,
                        )
                    )
            self.tiers.append(tier)
            parents = list(tier)
        self._assignments: dict[str, ForwarderNode] = {}

    @property
    def leaves(self) -> list[ForwarderNode]:
        return list(self.tiers[-1])

    @property
    def regional_ids(self) -> list[str]:
        """Identifiers the vantage point sees as forwarding servers."""
        return [node.node_id for node in self.tiers[0]]

    def assign_client(self, client: str, leaf_id: str) -> None:
        """Pin ``client`` to a specific leaf forwarder."""
        for node in self.leaves:
            if node.node_id == leaf_id:
                self._assignments[client] = node
                return
        raise KeyError(f"unknown leaf {leaf_id!r}")

    def leaf_for(self, client: str) -> ForwarderNode:
        """The leaf serving ``client`` (hash-assigned if unpinned)."""
        node = self._assignments.get(client)
        if node is None:
            leaves = self.leaves
            node = leaves[hash(client) % len(leaves)]
            self._assignments[client] = node
        return node

    def lookup(self, client: str, domain: str, now: float) -> RCode:
        """Resolve one client lookup through the whole tree."""
        return self.leaf_for(client).query(domain, now)

    def drain_observed(self) -> list[ForwardedLookup]:
        """Return and clear the border's vantage-point stream."""
        return self.border.drain_observed()

    def regional_of(self, leaf_id: str) -> str:
        """The tier-1 ancestor of a leaf (landscape granularity)."""
        return leaf_id.split(".")[0]

    def flush_caches(self) -> None:
        """Flush every cache at every tier."""
        for tier in self.tiers:
            for node in tier:
                node.flush_cache()
