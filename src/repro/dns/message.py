"""DNS message types shared by the simulator and BotMeter.

Time is represented as ``float`` seconds since the start of the
simulation; :mod:`repro.sim.clock` maps it to calendar days.  Two record
shapes matter (§II-B):

* the **raw** stream ``⟨timestamp, client, domain⟩`` seen *below* the
  local DNS servers (used only for ground truth), and
* the **observable** stream ``⟨timestamp, forwarding server, domain⟩`` of
  cache-filtered lookups forwarded to the border server — the only thing
  BotMeter gets to see.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["RCode", "Lookup", "Response", "ForwardedLookup"]


class RCode(enum.Enum):
    """DNS response codes we model: successful resolution or NXDOMAIN."""

    NOERROR = 0
    NXDOMAIN = 3


@dataclass(frozen=True, slots=True)
class Lookup:
    """A client-issued DNS lookup (raw-stream record)."""

    timestamp: float
    client: str
    domain: str

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be >= 0, got {self.timestamp}")


@dataclass(frozen=True, slots=True)
class Response:
    """An authoritative answer: the rcode and the TTL the resolver should
    honour when caching it."""

    domain: str
    rcode: RCode
    ttl: float

    @property
    def is_nxdomain(self) -> bool:
        return self.rcode is RCode.NXDOMAIN


@dataclass(frozen=True, slots=True)
class ForwardedLookup:
    """A cache-missed lookup forwarded by a local server to the border
    server — the vantage-point tuple ``⟨t, s, d⟩`` of §II-B."""

    timestamp: float
    server: str
    domain: str
