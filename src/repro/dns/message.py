"""DNS message types shared by the simulator and BotMeter.

Time is represented as ``float`` seconds since the start of the
simulation; :mod:`repro.sim.clock` maps it to calendar days.  Two record
shapes matter (§II-B):

* the **raw** stream ``⟨timestamp, client, domain⟩`` seen *below* the
  local DNS servers (used only for ground truth), and
* the **observable** stream ``⟨timestamp, forwarding server, domain⟩`` of
  cache-filtered lookups forwarded to the border server — the only thing
  BotMeter gets to see.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["RCode", "Lookup", "Response", "ForwardedLookup"]


class RCode(enum.Enum):
    """DNS response codes we model: successful resolution or NXDOMAIN."""

    NOERROR = 0
    NXDOMAIN = 3


@dataclass(frozen=True, slots=True)
class Lookup:
    """A client-issued DNS lookup (raw-stream record)."""

    timestamp: float
    client: str
    domain: str

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be >= 0, got {self.timestamp}")


@dataclass(frozen=True, slots=True)
class Response:
    """An authoritative answer: the rcode and the TTL the resolver should
    honour when caching it."""

    domain: str
    rcode: RCode
    ttl: float

    @property
    def is_nxdomain(self) -> bool:
        return self.rcode is RCode.NXDOMAIN


@dataclass(frozen=True, slots=True)
class ForwardedLookup:
    """A cache-missed lookup forwarded by a local server to the border
    server — the vantage-point tuple ``⟨t, s, d⟩`` of §II-B."""

    timestamp: float
    server: str
    domain: str

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form of the record, the wire format's foundation.

        The timestamp is passed through as a ``float`` (never formatted),
        so ``from_dict(to_dict(r)) == r`` holds exactly for every record.
        """
        return {
            "timestamp": self.timestamp,
            "server": self.server,
            "domain": self.domain,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ForwardedLookup":
        """Rebuild a record from :meth:`to_dict` output.

        Unknown keys are ignored so newer producers (which may add
        optional fields) stay readable by older consumers.

        Raises:
            KeyError: if a required field is missing.
            TypeError: if a field has the wrong type.
        """
        timestamp = data["timestamp"]
        server = data["server"]
        domain = data["domain"]
        if isinstance(timestamp, bool) or not isinstance(timestamp, (int, float)):
            raise TypeError(f"timestamp must be a number, got {timestamp!r}")
        if not isinstance(server, str):
            raise TypeError(f"server must be a string, got {server!r}")
        if not isinstance(domain, str):
            raise TypeError(f"domain must be a string, got {domain!r}")
        return cls(float(timestamp), server, domain)
