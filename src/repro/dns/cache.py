"""Positive/negative DNS caching (§II-A, §II-B).

A :class:`DnsCache` stores both successful answers (positive entries,
typically cached for a day) and NXDOMAIN answers (negative entries,
typically cached for minutes to hours, per RFC 1912/2308).  Entries expire
lazily on access plus an occasional sweep so long simulations do not
accumulate dead records.
"""

from __future__ import annotations

from dataclasses import dataclass

from .message import RCode

__all__ = ["CacheEntry", "DnsCache"]


@dataclass(slots=True)
class CacheEntry:
    """One cached answer: its rcode and absolute expiry time."""

    rcode: RCode
    expires_at: float

    def is_live(self, now: float) -> bool:
        """Whether the entry is still valid at ``now``."""
        return now < self.expires_at


class DnsCache:
    """A TTL-based DNS answer cache.

    The cache is agnostic of *which* TTL applies — callers supply it per
    insertion — so the same class backs positive and negative caching with
    the asymmetric TTLs the paper assumes.
    """

    #: Sweep the whole table every this-many insertions; keeps memory
    #: bounded in year-long simulations.
    _SWEEP_GROWTH = 50_000

    def __init__(self, sweep_growth: int | None = None) -> None:
        self._entries: dict[str, CacheEntry] = {}
        self._hits = 0
        self._misses = 0
        # Cadence is counted in puts, not table growth: lazy expiry in
        # get() shrinks the table between sweeps, and a growth-based
        # trigger would let never-revisited dead entries defer the sweep
        # far past the promised bound.
        self._sweep_growth = (
            self._SWEEP_GROWTH if sweep_growth is None else max(1, int(sweep_growth))
        )
        self._puts_since_sweep = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        """Number of lookups answered from cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of lookups that had to be forwarded."""
        return self._misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 if none seen)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def get(self, domain: str, now: float) -> RCode | None:
        """Return the cached rcode for ``domain`` or ``None`` on a miss.

        Expired entries are treated as misses and evicted.
        """
        entry = self._entries.get(domain)
        if entry is not None and entry.is_live(now):
            self._hits += 1
            return entry.rcode
        if entry is not None:
            del self._entries[domain]
        self._misses += 1
        return None

    def put(self, domain: str, rcode: RCode, now: float, ttl: float) -> None:
        """Cache an answer for ``ttl`` seconds from ``now``.

        A non-positive TTL means "do not cache", matching resolver
        behaviour for TTL-0 answers.
        """
        if ttl <= 0:
            return
        self._entries[domain] = CacheEntry(rcode, now + ttl)
        self._puts_since_sweep += 1
        if self._puts_since_sweep >= self._sweep_growth:
            self.sweep(now)

    def sweep(self, now: float) -> int:
        """Evict every expired entry; return how many were removed."""
        dead = [d for d, e in self._entries.items() if not e.is_live(now)]
        for domain in dead:
            del self._entries[domain]
        self._puts_since_sweep = 0
        return len(dead)

    def flush(self) -> None:
        """Drop all entries (e.g. at a server restart)."""
        self._entries.clear()
        self._puts_since_sweep = 0
