"""One-command reproduction report.

Runs the full §V evaluation — every Figure-6 sweep plus the enterprise
study — and renders a single Markdown document mirroring the paper's
evaluation section, with this repository's measured numbers.  The
benchmark suite under ``benchmarks/`` does the same per-artefact; this
module is the "give me everything" entry point behind
``repro-botmeter report``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..enterprise.trace_gen import EnterpriseConfig
from .experiments import (
    SweepResult,
    sweep_d3_miss,
    sweep_dynamics,
    sweep_negative_ttl,
    sweep_population,
    sweep_window,
)
from .parallel import TrialRunner
from .realdata import EnterpriseStudyResult, run_enterprise_study
from .visual import render_sweep_heatmap

__all__ = ["ReproductionReport", "generate_report"]

_SWEEP_SPECS: list[tuple[str, str, Callable[..., SweepResult]]] = [
    ("fig6a", "Figure 6(a) — ARE vs bot population N", sweep_population),
    ("fig6b", "Figure 6(b) — ARE vs observation window (epochs)", sweep_window),
    ("fig6c", "Figure 6(c) — ARE vs negative cache TTL (min)", sweep_negative_ttl),
    ("fig6d", "Figure 6(d) — ARE vs activation dynamics σ", sweep_dynamics),
    ("fig6e", "Figure 6(e) — ARE vs D3 miss rate (%)", sweep_d3_miss),
]


@dataclass
class ReproductionReport:
    """All measured artefacts plus Markdown rendering."""

    sweeps: dict[str, tuple[str, SweepResult]] = field(default_factory=dict)
    enterprise: EnterpriseStudyResult | None = None
    elapsed_seconds: float = 0.0
    #: JSON-ready wall-time/throughput summary from the trial runner
    #: (see :meth:`repro.eval.parallel.TrialRunner.perf_summary`).  Kept
    #: out of :meth:`to_markdown` so rendered reports stay byte-identical
    #: across worker counts and hosts.
    perf: dict | None = None

    def to_markdown(self) -> str:
        """Render the full report as a Markdown document."""
        lines = [
            "# BotMeter reproduction report",
            "",
            f"_Generated in {self.elapsed_seconds:.0f}s; ARE = |est − actual| / actual._",
            "",
        ]
        for _key, (title, sweep) in self.sweeps.items():
            lines += [f"## {title}", "", "```", sweep.render(), "", render_sweep_heatmap(sweep), "```", ""]
        if self.enterprise is not None:
            lines += [
                "## Table II — enterprise study (mean±std ARE)",
                "",
                "```",
                self.enterprise.render_table2(),
                "```",
                "",
            ]
            for family in self.enterprise.families():
                lines += [
                    f"### Figure 7 — {family} daily series",
                    "",
                    "```",
                    self.enterprise.render_series(family),
                    "```",
                    "",
                ]
        return "\n".join(lines)


def generate_report(
    trials: int = 3,
    models: Sequence[str] = ("AU", "AS", "AR", "AP"),
    sweep_keys: Sequence[str] = ("fig6a", "fig6b", "fig6c", "fig6d", "fig6e"),
    enterprise_config: EnterpriseConfig | None = None,
    include_enterprise: bool = True,
    workers: int = 1,
    root_seed: int = 0,
    runner: TrialRunner | None = None,
) -> ReproductionReport:
    """Run the selected experiments and collect a report.

    Args:
        trials: simulation trials per sweep cell.
        models: DGA model classes to evaluate.
        sweep_keys: which Figure-6 rows to run.
        enterprise_config: study configuration (default: the full §V-B
            activity period).
        include_enterprise: skip the (slow) enterprise study when False.
        workers: process-pool size for sweep trials (1 = in-process
            serial; the report content is identical either way).
        root_seed: root of the per-trial seed derivation.
        runner: pre-built :class:`TrialRunner` (overrides ``workers`` /
            ``root_seed``); one runner is shared across all sweeps so
            :attr:`ReproductionReport.perf` covers the whole grid.
    """
    started = time.monotonic()
    if runner is None:
        runner = TrialRunner(workers=workers, root_seed=root_seed)
    report = ReproductionReport()
    for key, title, sweep_fn in _SWEEP_SPECS:
        if key not in sweep_keys:
            continue
        report.sweeps[key] = (
            title,
            sweep_fn(trials=trials, models=tuple(models), runner=runner),
        )
    if include_enterprise:
        config = enterprise_config or EnterpriseConfig(n_days=210)
        report.enterprise = run_enterprise_study(config)
    report.elapsed_seconds = time.monotonic() - started
    report.perf = runner.perf_summary()
    return report
