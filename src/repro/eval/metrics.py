"""Evaluation metrics (§V-A).

The paper quantifies accuracy with the absolute relative error

    ``ARE = |estimated − actual| / actual``                    (Eqn 4)

and reports 25th–75th percentile error bars over repeated trials
(Figure 6) or mean ± standard deviation over days (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["absolute_relative_error", "ErrorSummary", "summarize_errors"]


def absolute_relative_error(estimated: float, actual: float) -> float:
    """Eqn (4).  ``actual`` must be positive — an ARE against a zero
    population is undefined (the paper only evaluates days with active
    bots)."""
    if actual <= 0:
        raise ValueError(f"actual population must be positive, got {actual}")
    return abs(estimated - actual) / actual


@dataclass(frozen=True)
class ErrorSummary:
    """Distribution summary of a set of ARE samples."""

    n: int
    mean: float
    std: float
    median: float
    p25: float
    p75: float

    def __str__(self) -> str:
        return (
            f"median={self.median:.3f} [{self.p25:.3f}, {self.p75:.3f}] "
            f"mean={self.mean:.3f}±{self.std:.3f} (n={self.n})"
        )


def summarize_errors(errors: Sequence[float]) -> ErrorSummary:
    """Percentile/mean summary of ARE samples (empty input is an error)."""
    if not errors:
        raise ValueError("need at least one error sample")
    arr = np.asarray(errors, dtype=float)
    return ErrorSummary(
        n=arr.size,
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        median=float(np.median(arr)),
        p25=float(np.percentile(arr, 25)),
        p75=float(np.percentile(arr, 75)),
    )
