"""Figure-6 experiment harness: parameter sweeps over synthetic data.

Each ``sweep_*`` function reproduces one row of Figure 6, varying a
single parameter while holding the §V-A defaults fixed, and measuring
the ARE of every (DGA model, estimator) pair the paper evaluates:

* MT on all four prototypes (AU = Murofet, AS = Conficker.C,
  AR = newGoZ, AP = Necurs);
* MP on AU;
* MB on AR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.botmeter import BotMeter, make_estimator
from ..detect.d3 import OracleDetector, build_detection_windows
from ..sim.network import SimConfig, simulate
from ..timebase import SECONDS_PER_DAY
from .metrics import ErrorSummary, absolute_relative_error, summarize_errors
from .parallel import TrialRunner, TrialSpec

__all__ = [
    "MODEL_PROTOTYPES",
    "ESTIMATOR_PROTOCOL",
    "SweepCell",
    "SweepResult",
    "run_trial",
    "sweep_population",
    "sweep_window",
    "sweep_negative_ttl",
    "sweep_dynamics",
    "sweep_d3_miss",
]

#: Table-I prototypes per analysed model class.
MODEL_PROTOTYPES: dict[str, str] = {
    "AU": "murofet",
    "AS": "conficker_c",
    "AR": "new_goz",
    "AP": "necurs",
}

#: Estimators applied per model class (§V-A experiment setup).
ESTIMATOR_PROTOCOL: dict[str, tuple[str, ...]] = {
    "AU": ("timing", "poisson"),
    "AS": ("timing",),
    "AR": ("timing", "bernoulli"),
    "AP": ("timing",),
}


@dataclass(frozen=True)
class SweepCell:
    """One (parameter value, model, estimator) cell of a Figure-6 row."""

    parameter_value: float
    model: str
    estimator: str
    summary: ErrorSummary
    errors: tuple[float, ...]


@dataclass
class SweepResult:
    """All cells of one Figure-6 row, plus pretty printing."""

    parameter: str
    values: tuple[float, ...]
    cells: list[SweepCell] = field(default_factory=list)

    def cell(self, value: float, model: str, estimator: str) -> SweepCell:
        """Look up one cell by parameter value, model and estimator."""
        for cell in self.cells:
            if (
                cell.parameter_value == value
                and cell.model == model
                and cell.estimator == estimator
            ):
                return cell
        raise KeyError(f"no cell for ({value}, {model}, {estimator})")

    def sort(self) -> None:
        """Canonical cell order: ``(parameter_value, model, estimator)``.

        Makes rendering and aggregation independent of the order trials
        happened to complete in (e.g. out of a process pool).
        """
        self.cells.sort(key=lambda c: (c.parameter_value, c.model, c.estimator))

    def series(self, model: str, estimator: str) -> list[tuple[float, ErrorSummary]]:
        """The (parameter value → summary) series of one curve, ordered
        by parameter value regardless of cell insertion order."""
        return sorted(
            (
                (c.parameter_value, c.summary)
                for c in self.cells
                if c.model == model and c.estimator == estimator
            ),
            key=lambda point: point[0],
        )

    def render(self) -> str:
        """Paper-style text table: one row per parameter value."""
        pairs = sorted({(c.model, c.estimator) for c in self.cells})
        header = f"{self.parameter:>24} " + " ".join(
            f"{f'{m}/{e}':>22}" for m, e in pairs
        )
        lines = [header, "-" * len(header)]
        for value in self.values:
            row = [f"{value:>24g} "]
            for model, estimator in pairs:
                try:
                    s = self.cell(value, model, estimator).summary
                    row.append(f"{s.median:>8.3f} [{s.p25:.3f},{s.p75:.3f}]")
                except KeyError:
                    row.append(" " * 22)
            lines.append(" ".join(row))
        return "\n".join(lines)


def run_trial(
    model: str,
    estimator_name: str,
    seed: int,
    n_bots: int = 64,
    n_days: int = 1,
    negative_ttl: float = 7_200.0,
    sigma: float = 0.0,
    d3_miss_rate: float = 0.0,
) -> float:
    """One simulation + estimation trial; returns the ARE.

    The estimate and the ground truth are both averaged over the epochs
    of the observation window, following the paper's protocol.
    """
    family = MODEL_PROTOTYPES[model]
    config = SimConfig(
        family=family,
        family_seed=7,
        n_bots=n_bots,
        n_days=n_days,
        seed=seed,
        sigma=sigma,
        negative_ttl=negative_ttl,
    )
    result = simulate(config)

    detection_windows = None
    if d3_miss_rate > 0:
        detector = OracleDetector(result.dga, miss_rate=d3_miss_rate, seed=seed)
        detection_windows = build_detection_windows(
            detector, result.timeline, range(n_days)
        )

    meter = BotMeter(
        result.dga,
        estimator=make_estimator(estimator_name),
        detection_windows=detection_windows,
        negative_ttl=negative_ttl,
        timestamp_granularity=config.timestamp_granularity,
        timeline=result.timeline,
    )
    landscape = meter.chart(result.observable, 0.0, n_days * SECONDS_PER_DAY)
    daily = result.ground_truth.daily_populations(n_days)
    actual = sum(daily) / len(daily)
    return absolute_relative_error(landscape.total, actual)


def _sweep(
    parameter: str,
    values: Sequence[float],
    trial_kwargs: Callable[[float], dict],
    trials: int,
    models: Sequence[str],
    workers: int = 1,
    root_seed: int = 0,
    runner: TrialRunner | None = None,
) -> SweepResult:
    """Run one Figure-6 row through the parallel experiment engine.

    Each trial's seed is derived from its grid coordinates (see
    :func:`repro.eval.parallel.derive_seed`), so the result is
    bit-identical for every ``workers`` value and completion order.
    """
    if runner is None:
        runner = TrialRunner(workers=workers, root_seed=root_seed)
    specs = [
        TrialSpec.build(
            row=parameter,
            model=model,
            estimator=estimator,
            parameter_value=value,
            trial=trial,
            root_seed=runner.root_seed,
            kwargs=trial_kwargs(value),
        )
        for value in values
        for model in models
        for estimator in ESTIMATOR_PROTOCOL[model]
        for trial in range(trials)
    ]
    outcomes = runner.run(specs, label=parameter)

    errors_by_cell: dict[tuple[float, str, str], dict[int, float]] = {}
    for outcome in outcomes:
        spec = outcome.spec
        key = (spec.parameter_value, spec.model, spec.estimator)
        errors_by_cell.setdefault(key, {})[spec.trial] = outcome.error

    result = SweepResult(parameter=parameter, values=tuple(values))
    for value in values:
        for model in models:
            for estimator in ESTIMATOR_PROTOCOL[model]:
                by_trial = errors_by_cell[(float(value), model, estimator)]
                errors = tuple(by_trial[trial] for trial in range(trials))
                result.cells.append(
                    SweepCell(
                        parameter_value=float(value),
                        model=model,
                        estimator=estimator,
                        summary=summarize_errors(errors),
                        errors=errors,
                    )
                )
    result.sort()
    return result


_ALL_MODELS = ("AU", "AS", "AR", "AP")


def sweep_population(
    values: Sequence[float] = (16, 32, 64, 128, 256),
    trials: int = 5,
    models: Sequence[str] = _ALL_MODELS,
    workers: int = 1,
    root_seed: int = 0,
    runner: "TrialRunner | None" = None,
) -> SweepResult:
    """Figure 6(a): ARE vs actual bot population N."""
    return _sweep(
        "bot population N",
        values,
        lambda v: {"n_bots": int(v)},
        trials,
        models,
        workers=workers,
        root_seed=root_seed,
        runner=runner,
    )


def sweep_window(
    values: Sequence[float] = (1, 2, 4, 8, 16),
    trials: int = 5,
    models: Sequence[str] = _ALL_MODELS,
    workers: int = 1,
    root_seed: int = 0,
    runner: "TrialRunner | None" = None,
) -> SweepResult:
    """Figure 6(b): ARE vs observation-window length in epochs."""
    return _sweep(
        "observation window (epochs)",
        values,
        lambda v: {"n_days": int(v)},
        trials,
        models,
        workers=workers,
        root_seed=root_seed,
        runner=runner,
    )


def sweep_negative_ttl(
    values: Sequence[float] = (20, 40, 80, 160, 320),
    trials: int = 5,
    models: Sequence[str] = _ALL_MODELS,
    workers: int = 1,
    root_seed: int = 0,
    runner: "TrialRunner | None" = None,
) -> SweepResult:
    """Figure 6(c): ARE vs negative-cache TTL in minutes."""
    return _sweep(
        "negative cache TTL (min)",
        values,
        lambda v: {"negative_ttl": v * 60.0},
        trials,
        models,
        workers=workers,
        root_seed=root_seed,
        runner=runner,
    )


def sweep_dynamics(
    values: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5),
    trials: int = 5,
    models: Sequence[str] = _ALL_MODELS,
    workers: int = 1,
    root_seed: int = 0,
    runner: "TrialRunner | None" = None,
) -> SweepResult:
    """Figure 6(d): ARE vs activation-rate dynamics σ."""
    return _sweep(
        "activation dynamics sigma",
        values,
        lambda v: {"sigma": v},
        trials,
        models,
        workers=workers,
        root_seed=root_seed,
        runner=runner,
    )


def sweep_d3_miss(
    values: Sequence[float] = (10, 20, 30, 40, 50),
    trials: int = 5,
    models: Sequence[str] = _ALL_MODELS,
    workers: int = 1,
    root_seed: int = 0,
    runner: "TrialRunner | None" = None,
) -> SweepResult:
    """Figure 6(e): ARE vs D3 detection-miss rate in percent."""
    return _sweep(
        "D3 miss rate (%)",
        values,
        lambda v: {"d3_miss_rate": v / 100.0},
        trials,
        models,
        workers=workers,
        root_seed=root_seed,
        runner=runner,
    )
