"""Parallel experiment engine with deterministic seeding.

The Figure-6 evaluation grid — (DGA model × estimator × parameter value
× trial) — is embarrassingly parallel: every trial is an independent
simulation.  This module fans trials out over a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping results
**bit-identical** to a serial run:

* :func:`derive_seed` maps the trial's full coordinates to its RNG seed
  through a stable cryptographic hash, so a trial's randomness depends
  only on *what* it is, never on *when* or *where* it runs;
* :meth:`TrialRunner.run` assembles outcomes in submission order, so
  worker count, chunking and completion order cannot reorder (and
  thereby renumber) anything.

``TrialRunner`` transparently falls back to in-process serial execution
when ``workers == 1``, when there is at most one trial, or when the
trial function / specs cannot be pickled (e.g. a closure injected by a
test), so callers never need to special-case either path.  Every run is
timed per trial; :meth:`TrialRunner.perf_summary` aggregates wall-time
and throughput into a JSON-ready dict (the groundwork for a
``BENCH_*.json`` performance trajectory).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

__all__ = [
    "derive_seed",
    "TrialSpec",
    "TrialOutcome",
    "RunPerf",
    "TrialRunner",
    "default_trial_fn",
]

#: Seeds live in ``[0, 2**63)`` — non-negative and safe for every
#: consumer (``random.Random``, ``numpy`` legacy and Generator seeding).
SEED_SPACE = 2**63


def _canonical_value(value: float) -> str:
    """A numeric spelling that is identical for ``16`` and ``16.0``."""
    number = float(value)
    return repr(int(number)) if number.is_integer() else repr(number)


def derive_seed(
    root_seed: int,
    row: str,
    model: str,
    estimator: str,
    param_value: float,
    trial: int,
) -> int:
    """Derive the RNG seed of one trial from its grid coordinates.

    The derivation is a SHA-256 over an unambiguous encoding of the
    coordinates, so it is

    * stable across processes, interpreter runs and
      ``PYTHONHASHSEED`` values (no use of :func:`hash`);
    * independent of dict/iteration order (the coordinates are encoded
      positionally, and integral floats are canonicalised so ``16`` and
      ``16.0`` agree);
    * collision-free in practice (63-bit outputs over a grid of a few
      hundred cells).
    """
    key = "\x1f".join(
        (
            str(int(root_seed)),
            str(row),
            str(model),
            str(estimator),
            _canonical_value(param_value),
            str(int(trial)),
        )
    )
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % SEED_SPACE


@dataclass(frozen=True)
class TrialSpec:
    """One fully-specified trial of an experiment grid.

    ``kwargs`` is stored as a sorted tuple of pairs so specs are
    hashable, picklable, and equal regardless of the insertion order of
    the dict they were built from.
    """

    row: str
    model: str
    estimator: str
    parameter_value: float
    trial: int
    seed: int
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def build(
        cls,
        *,
        row: str,
        model: str,
        estimator: str,
        parameter_value: float,
        trial: int,
        root_seed: int = 0,
        kwargs: Mapping[str, Any] | None = None,
    ) -> "TrialSpec":
        """Construct a spec, deriving its seed from the coordinates."""
        return cls(
            row=row,
            model=model,
            estimator=estimator,
            parameter_value=float(parameter_value),
            trial=int(trial),
            seed=derive_seed(
                root_seed, row, model, estimator, parameter_value, trial
            ),
            kwargs=tuple(sorted((kwargs or {}).items())),
        )


@dataclass(frozen=True)
class TrialOutcome:
    """A trial's result plus its execution accounting."""

    spec: TrialSpec
    error: float
    seconds: float
    worker: int


def default_trial_fn(spec: TrialSpec) -> float:
    """Execute one spec through :func:`repro.eval.experiments.run_trial`."""
    from .experiments import run_trial  # deferred: experiments imports us

    return run_trial(
        spec.model, spec.estimator, seed=spec.seed, **dict(spec.kwargs)
    )


def _timed_call(payload: tuple[Callable[[TrialSpec], float], TrialSpec]):
    """Worker entry point: run one trial and time it (module-level so it
    pickles under every multiprocessing start method)."""
    fn, spec = payload
    started = time.perf_counter()
    error = fn(spec)
    return error, time.perf_counter() - started, os.getpid()


@dataclass
class RunPerf:
    """Wall-time/throughput accounting of one :meth:`TrialRunner.run`."""

    label: str
    workers: int
    n_trials: int
    wall_seconds: float
    trial_seconds: float

    @property
    def throughput(self) -> float:
        """Completed trials per wall-clock second."""
        return self.n_trials / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def speedup(self) -> float:
        """Aggregate trial time over wall time — the realised speedup."""
        return self.trial_seconds / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "workers": self.workers,
            "n_trials": self.n_trials,
            "wall_seconds": self.wall_seconds,
            "trial_seconds": self.trial_seconds,
            "throughput_trials_per_second": self.throughput,
            "speedup": self.speedup,
        }


class TrialRunner:
    """Run batches of :class:`TrialSpec` serially or over a process pool.

    Results are returned in submission order and every trial's seed is
    already fixed by its spec, so for any given spec list the outcomes
    are identical for every ``workers`` value.
    """

    def __init__(
        self,
        workers: int = 1,
        root_seed: int = 0,
        trial_fn: Callable[[TrialSpec], float] | None = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.root_seed = int(root_seed)
        self.trial_fn = trial_fn if trial_fn is not None else default_trial_fn
        self.runs: list[RunPerf] = []

    # -- execution ---------------------------------------------------------

    def _can_pickle(self, specs: Sequence[TrialSpec]) -> bool:
        try:
            pickle.dumps((self.trial_fn, tuple(specs)))
            return True
        except Exception:
            return False

    def run(
        self, specs: Sequence[TrialSpec], label: str = "trials"
    ) -> list[TrialOutcome]:
        """Execute all specs; outcomes are in the order specs were given."""
        specs = list(specs)
        started = time.perf_counter()
        parallel = self.workers > 1 and len(specs) > 1 and self._can_pickle(specs)
        if parallel:
            payloads = [(self.trial_fn, spec) for spec in specs]
            chunksize = max(1, len(specs) // (self.workers * 4))
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                raws = list(pool.map(_timed_call, payloads, chunksize=chunksize))
        else:
            raws = [_timed_call((self.trial_fn, spec)) for spec in specs]
        wall = time.perf_counter() - started
        outcomes = [
            TrialOutcome(spec=spec, error=error, seconds=seconds, worker=worker)
            for spec, (error, seconds, worker) in zip(specs, raws)
        ]
        self.runs.append(
            RunPerf(
                label=label,
                workers=self.workers if parallel else 1,
                n_trials=len(specs),
                wall_seconds=wall,
                trial_seconds=sum(o.seconds for o in outcomes),
            )
        )
        return outcomes

    # -- accounting --------------------------------------------------------

    def perf_summary(self) -> dict[str, Any]:
        """JSON-ready performance summary across all ``run()`` calls."""
        wall = sum(r.wall_seconds for r in self.runs)
        trial_seconds = sum(r.trial_seconds for r in self.runs)
        n_trials = sum(r.n_trials for r in self.runs)
        return {
            "schema": "repro-perf-v1",
            "workers": self.workers,
            "root_seed": self.root_seed,
            "cpu_count": os.cpu_count(),
            "n_trials": n_trials,
            "wall_seconds": wall,
            "trial_seconds": trial_seconds,
            "throughput_trials_per_second": (
                n_trials / wall if wall > 0 else 0.0
            ),
            "speedup": trial_seconds / wall if wall > 0 else 0.0,
            "runs": [r.to_dict() for r in self.runs],
        }
