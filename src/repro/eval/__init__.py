"""Evaluation harness: ARE metrics, Figure-6 parameter sweeps, and the
Figure-7 / Table-II enterprise study."""

from .experiments import (
    ESTIMATOR_PROTOCOL,
    MODEL_PROTOTYPES,
    SweepCell,
    SweepResult,
    run_trial,
    sweep_d3_miss,
    sweep_dynamics,
    sweep_negative_ttl,
    sweep_population,
    sweep_window,
)
from .metrics import ErrorSummary, absolute_relative_error, summarize_errors
from .parallel import (
    TrialOutcome,
    TrialRunner,
    TrialSpec,
    derive_seed,
)
from .realdata import DailyEstimate, EnterpriseStudyResult, run_enterprise_study
from .report import ReproductionReport, generate_report
from .visual import render_landscape_bars, render_series_chart, render_sweep_heatmap

__all__ = [
    "ESTIMATOR_PROTOCOL",
    "MODEL_PROTOTYPES",
    "SweepCell",
    "SweepResult",
    "run_trial",
    "sweep_d3_miss",
    "sweep_dynamics",
    "sweep_negative_ttl",
    "sweep_population",
    "sweep_window",
    "ErrorSummary",
    "absolute_relative_error",
    "summarize_errors",
    "TrialOutcome",
    "TrialRunner",
    "TrialSpec",
    "derive_seed",
    "DailyEstimate",
    "EnterpriseStudyResult",
    "run_enterprise_study",
    "render_landscape_bars",
    "render_series_chart",
    "render_sweep_heatmap",
    "ReproductionReport",
    "generate_report",
]
