"""Text-mode visual analytics (paper §VII, future-work direction 2).

The paper suggests "complementing BotMeter with visual analytical
components".  This module renders landscapes and daily series as plain
text so the tool is usable from a terminal or a report:

* :func:`render_series_chart` — a Figure-7-style log-scale strip chart of
  actual vs estimated daily populations;
* :func:`render_landscape_bars` — a per-server infection bar chart for
  one landscape;
* :func:`render_sweep_heatmap` — a parameter-sweep error heat strip.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.botmeter import Landscape
from .experiments import SweepResult
from .realdata import DailyEstimate

__all__ = [
    "render_series_chart",
    "render_landscape_bars",
    "render_sweep_heatmap",
]

_SHADES = " ░▒▓█"


def _log_position(value: float, max_value: float, width: int) -> int:
    """Column of a value on a log scale from 1 to ``max_value``."""
    if value < 1.0:
        return 0
    span = math.log10(max(max_value, 10.0))
    return min(width - 1, int(round(math.log10(value) / span * (width - 1))))


def render_series_chart(
    points: Sequence[DailyEstimate],
    estimator: str,
    width: int = 48,
) -> str:
    """Figure-7-style strip chart: ``●`` actual vs ``○`` estimate per day.

    Both marks share a log-scale axis from 1 to the series maximum; when
    they land on the same column a ``◉`` is drawn.
    """
    if not points:
        return "(no active days)"
    top = max(
        max(p.actual for p in points),
        max(p.estimates[estimator] for p in points),
        1.0,
    )
    lines = [
        f"log-scale 1 .. {top:.0f}   ● actual   ○ {estimator}   ◉ both",
    ]
    for p in points:
        row = [" "] * width
        a = _log_position(p.actual, top, width)
        e = _log_position(p.estimates[estimator], top, width)
        if a == e:
            row[a] = "◉"
        else:
            row[a] = "●"
            row[e] = "○"
        lines.append(
            f"{p.date} |{''.join(row)}| act={p.actual:>4d} est={p.estimates[estimator]:>7.1f}"
        )
    return "\n".join(lines)


def render_landscape_bars(landscape: Landscape, width: int = 40) -> str:
    """Horizontal bar chart of per-server estimated populations."""
    if not landscape.per_server:
        return "(empty landscape)"
    top = max(landscape.total, max(v for _, v in landscape.ranked()), 1.0)
    lines = [f"{landscape.dga_name} — estimated bots per local server"]
    for server, value in landscape.ranked():
        filled = int(round(value / top * width))
        lines.append(f"{server:<12} {'█' * filled}{'·' * (width - filled)} {value:6.1f}")
    return "\n".join(lines)


def render_sweep_heatmap(result: SweepResult, width_per_cell: int = 7) -> str:
    """Error heat strip per (model, estimator) curve of a Figure-6 row.

    Shading encodes the median ARE: ``' '`` ≈ 0 up to ``'█'`` ≥ 1.
    """
    pairs = sorted({(c.model, c.estimator) for c in result.cells})
    if not pairs:
        return "(empty sweep)"
    header = f"{result.parameter:<28}" + "".join(
        f"{v:>{width_per_cell}g}" for v in result.values
    )
    lines = [header]
    for model, estimator in pairs:
        cells = []
        for value, summary in result.series(model, estimator):
            shade = _SHADES[min(len(_SHADES) - 1, int(summary.median / 0.25))]
            cells.append(f"{shade * 3:>{width_per_cell}}")
        lines.append(f"{f'{model}/{estimator}':<28}" + "".join(cells))
    lines.append("shade: ' '<0.25 ░<0.5 ▒<0.75 ▓<1.0 █>=1.0 median ARE")
    return "\n".join(lines)
