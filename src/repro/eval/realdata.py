"""Figure-7 / Table-II harness: daily estimation over the enterprise
trace substitute.

For each study day and each active family, the harness runs the paper's
protocol: a one-day observation window, MT on everything, MB on newGoZ
(AR) and MP on Ramnit/Qakbot (AU), then compares against the per-day
ground truth (distinct infected clients that issued DGA lookups).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.bernoulli import BernoulliEstimator
from ..core.estimator import Estimator
from ..core.poisson import PoissonEstimator
from ..core.taxonomy import ModelClass, classify
from ..core.timing import TimingEstimator
from ..core.botmeter import BotMeter
from ..enterprise.trace_gen import EnterpriseConfig, EnterpriseTraceGenerator
from ..timebase import SECONDS_PER_DAY
from .metrics import absolute_relative_error, summarize_errors

__all__ = ["DailyEstimate", "EnterpriseStudyResult", "run_enterprise_study"]


@dataclass(frozen=True)
class DailyEstimate:
    """One (day, family) evaluation point."""

    day_index: int
    date: str
    family: str
    actual: int
    estimates: dict[str, float]

    def error(self, estimator: str) -> float:
        """ARE of one estimator's estimate for this day."""
        return absolute_relative_error(self.estimates[estimator], self.actual)


@dataclass
class EnterpriseStudyResult:
    """All daily points plus Table-II style aggregation."""

    points: list[DailyEstimate] = field(default_factory=list)

    def families(self) -> list[str]:
        """Families with at least one evaluated day, sorted."""
        return sorted({p.family for p in self.points})

    def series(self, family: str) -> list[DailyEstimate]:
        """Figure-7 series: the active days of one family, in order."""
        return sorted(
            (p for p in self.points if p.family == family),
            key=lambda p: p.day_index,
        )

    def table2(self) -> dict[tuple[str, str], tuple[float, float]]:
        """Mean ± std ARE per (family, estimator) — the paper's Table II."""
        table: dict[tuple[str, str], tuple[float, float]] = {}
        for family in self.families():
            points = self.series(family)
            if not points:
                continue
            for estimator in points[0].estimates:
                summary = summarize_errors([p.error(estimator) for p in points])
                table[(family, estimator)] = (summary.mean, summary.std)
        return table

    def render_table2(self) -> str:
        """Text rendering of the Table-II aggregation."""
        table = self.table2()
        estimators = sorted({e for _, e in table})
        header = f"{'DGA':<10}" + "".join(f"{e:>18}" for e in estimators)
        lines = [header, "-" * len(header)]
        for family in self.families():
            row = [f"{family:<10}"]
            for estimator in estimators:
                cell = table.get((family, estimator))
                row.append(
                    f"{cell[0]:>8.3f}±{cell[1]:<8.3f}" if cell else " " * 18
                )
            lines.append("".join(row))
        return "\n".join(lines)

    def render_series(self, family: str) -> str:
        """Figure-7 style text series for one family."""
        lines = [f"{'date':<12}{'actual':>8}" ]
        points = self.series(family)
        estimators = sorted(points[0].estimates) if points else []
        lines[0] += "".join(f"{e:>12}" for e in estimators)
        for p in points:
            row = f"{p.date:<12}{p.actual:>8d}"
            row += "".join(f"{p.estimates[e]:>12.1f}" for e in estimators)
            lines.append(row)
        return "\n".join(lines)


def _estimators_for(dga_class: ModelClass) -> dict[str, Estimator]:
    estimators: dict[str, Estimator] = {"timing": TimingEstimator()}
    if dga_class is ModelClass.AU:
        estimators["poisson"] = PoissonEstimator()
    elif dga_class is ModelClass.AR:
        estimators["bernoulli"] = BernoulliEstimator()
    return estimators


def run_enterprise_study(
    config: EnterpriseConfig | None = None,
    min_population: int = 1,
) -> EnterpriseStudyResult:
    """Run the full §V-B evaluation over the synthetic enterprise trace.

    Days where a family's actual population is below ``min_population``
    are skipped for that family (the paper evaluates active days only —
    ARE is undefined at zero population).
    """
    config = config or EnterpriseConfig()
    generator = EnterpriseTraceGenerator(config)
    result = EnterpriseStudyResult()

    meters: dict[str, dict[str, BotMeter]] = {}
    for family, dga in generator.dgas.items():
        meters[family] = {
            name: BotMeter(
                dga,
                estimator=estimator,
                negative_ttl=config.negative_ttl,
                timestamp_granularity=config.timestamp_granularity,
                timeline=generator.timeline,
            )
            for name, estimator in _estimators_for(classify(dga)).items()
        }

    for day in generator.days():
        window = (
            day.day_index * SECONDS_PER_DAY,
            (day.day_index + 1) * SECONDS_PER_DAY,
        )
        for family, actual in day.actual.items():
            if actual < min_population:
                continue
            estimates = {
                name: meter.chart(day.observable, *window).total
                for name, meter in meters[family].items()
            }
            result.points.append(
                DailyEstimate(
                    day_index=day.day_index,
                    date=day.date.isoformat(),
                    family=family,
                    actual=actual,
                    estimates=estimates,
                )
            )
    return result
