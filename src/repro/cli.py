"""Command-line interface.

Gives operators the Figure-2 workflow without writing Python:

* ``repro simulate``  — generate a synthetic botnet trace (observable
  CSV + ground truth) for experimentation;
* ``repro chart``     — run BotMeter over an observable CSV and print
  the per-server landscape;
* ``repro taxonomy``  — print the Figure-3 taxonomy grid;
* ``repro families``  — list implemented DGA families and parameters;
* ``repro sweep``     — run one Figure-6 sweep row;
* ``repro enterprise``— run a (shortened) §V-B enterprise study.

Run ``python -m repro.cli <command> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core.botmeter import BotMeter, make_estimator
from .core.taxonomy import classify, render_taxonomy
from .dga.families import family_names, make_family
from .enterprise.trace_gen import EnterpriseConfig
from .eval.experiments import (
    sweep_d3_miss,
    sweep_dynamics,
    sweep_negative_ttl,
    sweep_population,
    sweep_window,
)
from .eval.parallel import TrialRunner
from .eval.realdata import run_enterprise_study
from .sim.network import SimConfig, simulate
from .sim.trace import load_observable_csv, save_observable_csv
from .timebase import SECONDS_PER_DAY, Timeline

__all__ = ["main", "build_parser"]

_SWEEPS = {
    "population": sweep_population,
    "window": sweep_window,
    "negative-ttl": sweep_negative_ttl,
    "dynamics": sweep_dynamics,
    "d3-miss": sweep_d3_miss,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BotMeter (ICDCS 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic botnet trace")
    sim.add_argument("--family", default="new_goz", choices=family_names())
    sim.add_argument("--bots", type=int, default=48)
    sim.add_argument("--servers", type=int, default=1)
    sim.add_argument("--days", type=int, default=1)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--sigma", type=float, default=0.0)
    sim.add_argument("--out", required=True, help="observable CSV output path")

    chart = sub.add_parser("chart", help="chart a landscape from an observable CSV")
    chart.add_argument("--family", default="new_goz", choices=family_names())
    chart.add_argument("--family-seed", type=int, default=7)
    chart.add_argument(
        "--estimator",
        default="auto",
        choices=("auto", "timing", "poisson", "bernoulli", "renewal"),
    )
    chart.add_argument("--negative-ttl", type=float, default=7_200.0)
    chart.add_argument("--granularity", type=float, default=0.1)
    chart.add_argument("trace", help="observable CSV (from `repro simulate`)")

    sub.add_parser("taxonomy", help="print the Figure-3 taxonomy grid")
    sub.add_parser("families", help="list implemented DGA families")

    sweep = sub.add_parser("sweep", help="run one Figure-6 sweep row")
    sweep.add_argument("row", choices=sorted(_SWEEPS))
    sweep.add_argument("--trials", type=int, default=3)
    sweep.add_argument(
        "--models", nargs="+", default=["AU", "AS", "AR", "AP"],
        choices=["AU", "AS", "AR", "AP"],
    )
    sweep.add_argument(
        "--values", nargs="+", type=float, default=None,
        help="override the row's swept parameter values",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="trial process-pool size (1 = serial; output is identical)",
    )
    sweep.add_argument(
        "--seed", type=int, default=0,
        help="root seed for the per-trial seed derivation",
    )
    sweep.add_argument(
        "--perf-json", default=None, metavar="PATH",
        help="write the runner's wall-time/throughput summary as JSON",
    )

    ent = sub.add_parser("enterprise", help="run the §V-B enterprise study")
    ent.add_argument("--days", type=int, default=210)
    ent.add_argument("--benign-clients", type=int, default=80)
    ent.add_argument("--seed", type=int, default=0)

    report = sub.add_parser("report", help="full reproduction report (Markdown)")
    report.add_argument("--trials", type=int, default=3)
    report.add_argument("--skip-enterprise", action="store_true")
    report.add_argument("--out", default=None, help="write Markdown here instead of stdout")
    report.add_argument(
        "--sweeps", nargs="+", default=None,
        choices=["fig6a", "fig6b", "fig6c", "fig6d", "fig6e"],
        help="run only these Figure-6 rows (default: all five)",
    )
    report.add_argument(
        "--models", nargs="+", default=["AU", "AS", "AR", "AP"],
        choices=["AU", "AS", "AR", "AP"],
    )
    report.add_argument(
        "--workers", type=int, default=1,
        help="trial process-pool size (1 = serial; the report is identical)",
    )
    report.add_argument(
        "--seed", type=int, default=0,
        help="root seed for the per-trial seed derivation",
    )
    report.add_argument(
        "--perf-json", default=None, metavar="PATH",
        help="write the sweep perf summary (workers, wall time, throughput) as JSON",
    )

    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = SimConfig(
        family=args.family,
        n_bots=args.bots,
        n_local_servers=args.servers,
        n_days=args.days,
        seed=args.seed,
        sigma=args.sigma,
    )
    result = simulate(config)
    save_observable_csv(result.observable, args.out)
    print(f"wrote {len(result.observable)} observable lookups to {args.out}")
    for day in range(args.days):
        print(f"day {day}: actual active bots = {result.ground_truth.population(day)}")
    return 0


def _cmd_chart(args: argparse.Namespace) -> int:
    records = load_observable_csv(args.trace)
    if not records:
        print("trace is empty", file=sys.stderr)
        return 1
    dga = make_family(args.family, args.family_seed)
    estimator = args.estimator if args.estimator == "auto" else make_estimator(args.estimator)
    meter = BotMeter(
        dga,
        estimator=estimator,
        negative_ttl=args.negative_ttl,
        timestamp_granularity=args.granularity,
        timeline=Timeline(),
    )
    landscape = meter.chart(records)
    print(landscape.summary())
    return 0


def _cmd_taxonomy(_args: argparse.Namespace) -> int:
    print(render_taxonomy())
    return 0


def _cmd_families(_args: argparse.Namespace) -> int:
    print(f"{'family':<14}{'class':<6}{'θ∅':>8}{'θ∃':>5}{'θq':>7}{'δi':>8}")
    for name in family_names():
        dga = make_family(name)
        params = dga.params
        interval = f"{params.query_interval:.1f}s" + ("" if params.fixed_interval else "*")
        print(
            f"{name:<14}{classify(dga).name:<6}{params.n_nxd:>8}"
            f"{params.n_registered:>5}{params.barrel_size:>7}{interval:>8}"
        )
    print("(* = jittered interval)")
    return 0


def _write_perf_json(path: str, runner: TrialRunner) -> None:
    import json
    from pathlib import Path

    Path(path).write_text(json.dumps(runner.perf_summary(), indent=2) + "\n")


def _cmd_sweep(args: argparse.Namespace) -> int:
    runner = TrialRunner(workers=args.workers, root_seed=args.seed)
    kwargs = dict(trials=args.trials, models=tuple(args.models), runner=runner)
    if args.values is not None:
        kwargs["values"] = tuple(args.values)
    result = _SWEEPS[args.row](**kwargs)
    print(result.render())
    if args.perf_json:
        _write_perf_json(args.perf_json, runner)
    return 0


def _cmd_enterprise(args: argparse.Namespace) -> int:
    config = EnterpriseConfig(
        n_days=args.days, n_benign_clients=args.benign_clients, seed=args.seed
    )
    result = run_enterprise_study(config)
    print(result.render_table2())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .eval.report import generate_report

    runner = TrialRunner(workers=args.workers, root_seed=args.seed)
    kwargs = dict(
        trials=args.trials,
        include_enterprise=not args.skip_enterprise,
        models=tuple(args.models),
        runner=runner,
    )
    if args.sweeps is not None:
        kwargs["sweep_keys"] = tuple(args.sweeps)
    report = generate_report(**kwargs)
    markdown = report.to_markdown()
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(markdown)
        print(f"wrote report to {args.out}")
    else:
        print(markdown)
    if args.perf_json:
        _write_perf_json(args.perf_json, runner)
    return 0


_HANDLERS = {
    "simulate": _cmd_simulate,
    "chart": _cmd_chart,
    "taxonomy": _cmd_taxonomy,
    "families": _cmd_families,
    "sweep": _cmd_sweep,
    "enterprise": _cmd_enterprise,
    "report": _cmd_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
