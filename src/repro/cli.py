"""Command-line interface.

Gives operators the Figure-2 workflow without writing Python:

* ``repro simulate``  — generate a synthetic botnet trace (observable
  CSV + ground truth) for experimentation;
* ``repro chart``     — run BotMeter over an observable CSV and print
  the per-server landscape;
* ``repro taxonomy``  — print the Figure-3 taxonomy grid;
* ``repro families``  — list implemented DGA families and parameters;
* ``repro sweep``     — run one Figure-6 sweep row;
* ``repro enterprise``— run a (shortened) §V-B enterprise study;
* ``repro export-trace`` — write a synthetic trace in the botmeterd
  NDJSON wire format (or compact binary wire v2 with ``--wire v2``);
* ``repro convert-trace`` — convert a recorded trace between NDJSON
  and binary wire v2 (direction auto-detected);
* ``repro bench-summary`` — aggregate ``BENCH_*.json`` perf artifacts
  into one table;
* ``repro replay``    — drain a recorded trace through botmeterd (or
  the batch reference) and print the landscape series;
* ``repro serve``     — run botmeterd live: follow a file or stdin,
  with checkpointed recovery, metrics, optional fault injection
  (``--faults``) and restart supervision (``--supervise``); or listen
  for concurrent sensor connections (``--listen`` / ``--listen-uds``,
  the Sensornet ingest tier);
* ``repro sensor-send`` — stream an NDJSON trace (or one round-robin
  shard of it) to a listening botmeterd, with reconnect-and-resume;
* ``repro netingest-smoke`` — the Sensornet smoke drill: sharded
  concurrent replay over localhost TCP and a Unix socket, byte-diffed
  against the single-file replay;
* ``repro faults-soak`` — the Faultline soak: replay a multi-family
  trace through a seeded fault schedule under supervision and verify
  survival, exact dead-letter accounting, bounded degradation and
  determinism;
* ``repro trace-report`` — aggregate one ``--trace-out`` span-event
  file (or several, with ``--merge``) into a per-stage latency table
  (Stagewatch);
* ``repro cluster-replay`` — drain a trace through an N-partition
  botmeterd cluster (Chartmesh) and merge the per-partition landscapes
  into one chart, byte-verified against the single-daemon replay;
* ``repro reshard`` — the live-reshard drill: drain N partitions at a
  stream split point, re-key their checkpoints to M partitions, resume
  and verify the merged chart is byte-identical to an unpartitioned
  replay;
* ``repro cluster-serve`` — run the cluster live: a router listener
  splits sensor streams by server hash across N partition backends
  (``--supervised`` adds Meshguard heartbeat supervision, seeded
  restarts, and durable router spooling);
* ``repro cluster-smoke`` — the Chartmesh smoke drill: flat partitioned
  replay plus a midpoint reshard, both byte-diffed against the
  single-daemon replay;
* ``repro cluster-chaos`` — the Meshguard fault drill: SIGKILL/wedge
  every partition mid-stream on a seeded schedule and demand zero
  record loss, degraded-interval containment, and run-to-run
  determinism.

Run ``python -m repro.cli <command> --help`` for per-command options.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core.botmeter import BotMeter, make_estimator
from .core.taxonomy import classify, render_taxonomy
from .dga.families import family_names, make_family
from .enterprise.trace_gen import EnterpriseConfig
from .eval.experiments import (
    sweep_d3_miss,
    sweep_dynamics,
    sweep_negative_ttl,
    sweep_population,
    sweep_window,
)
from .eval.parallel import TrialRunner
from .eval.realdata import run_enterprise_study
from .sim.network import SimConfig, simulate
from .sim.trace import load_observable_csv, save_observable_csv
from .timebase import SECONDS_PER_DAY, Timeline

__all__ = ["main", "build_parser"]

_SWEEPS = {
    "population": sweep_population,
    "window": sweep_window,
    "negative-ttl": sweep_negative_ttl,
    "dynamics": sweep_dynamics,
    "d3-miss": sweep_d3_miss,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BotMeter (ICDCS 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic botnet trace")
    sim.add_argument("--family", default="new_goz", choices=family_names())
    sim.add_argument("--bots", type=int, default=48)
    sim.add_argument("--servers", type=int, default=1)
    sim.add_argument("--days", type=int, default=1)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--sigma", type=float, default=0.0)
    sim.add_argument("--out", required=True, help="observable CSV output path")

    chart = sub.add_parser("chart", help="chart a landscape from an observable CSV")
    chart.add_argument("--family", default="new_goz", choices=family_names())
    chart.add_argument("--family-seed", type=int, default=7)
    chart.add_argument(
        "--estimator",
        default="auto",
        choices=("auto", "timing", "poisson", "bernoulli", "renewal"),
    )
    chart.add_argument("--negative-ttl", type=float, default=7_200.0)
    chart.add_argument("--granularity", type=float, default=0.1)
    chart.add_argument("trace", help="observable CSV (from `repro simulate`)")

    sub.add_parser("taxonomy", help="print the Figure-3 taxonomy grid")
    sub.add_parser("families", help="list implemented DGA families")

    sweep = sub.add_parser("sweep", help="run one Figure-6 sweep row")
    sweep.add_argument("row", choices=sorted(_SWEEPS))
    sweep.add_argument("--trials", type=int, default=3)
    sweep.add_argument(
        "--models", nargs="+", default=["AU", "AS", "AR", "AP"],
        choices=["AU", "AS", "AR", "AP"],
    )
    sweep.add_argument(
        "--values", nargs="+", type=float, default=None,
        help="override the row's swept parameter values",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="trial process-pool size (1 = serial; output is identical)",
    )
    sweep.add_argument(
        "--seed", type=int, default=0,
        help="root seed for the per-trial seed derivation",
    )
    sweep.add_argument(
        "--perf-json", default=None, metavar="PATH",
        help="write the runner's wall-time/throughput summary as JSON",
    )

    ent = sub.add_parser("enterprise", help="run the §V-B enterprise study")
    ent.add_argument("--days", type=int, default=210)
    ent.add_argument("--benign-clients", type=int, default=80)
    ent.add_argument("--seed", type=int, default=0)

    _SERVICE_ESTIMATORS = (
        "auto", "timing", "poisson", "bernoulli", "renewal", "occupancy", "ensemble",
    )

    def _add_engine_options(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--family", action="append", default=None, metavar="NAME[:SEED]",
            help="chart this DGA family (repeatable; default: the trace header)",
        )
        cmd.add_argument("--estimator", default="auto", choices=_SERVICE_ESTIMATORS)
        cmd.add_argument(
            "--grace", type=float, default=900.0,
            help="seconds past an epoch's end before it is emitted",
        )
        cmd.add_argument(
            "--granularity", type=float, default=None,
            help="timestamp granularity (default: the trace header, else 0.1)",
        )
        cmd.add_argument("--negative-ttl", type=float, default=7_200.0)
        cmd.add_argument(
            "--reorder-capacity", type=int, default=1024,
            help="bounded reorder-buffer size (the backpressure point)",
        )
        cmd.add_argument(
            "--policy", choices=("block", "drop-oldest"), default="block",
            help="full-buffer backpressure policy",
        )
        cmd.add_argument(
            "--max-corrupt", type=int, default=None,
            help="corrupt wire-line budget before aborting (default: unlimited)",
        )
        cmd.add_argument(
            "--faults", default=None, metavar="SPEC",
            help="seeded fault-injection schedule, e.g. "
                 "'seed=11,corrupt=0.01,dup=0.02,drop=0.008:3' "
                 "(see repro.service.faults.parse_fault_spec)",
        )
        cmd.add_argument(
            "--deadletter", default=None, metavar="PATH",
            help="NDJSON dead-letter sidecar for corrupt/late records",
        )
        cmd.add_argument("--out", default=None, help="landscape NDJSON (default: stdout)")
        cmd.add_argument(
            "--metrics-out", default=None, metavar="PATH",
            help="write the Prometheus text exposition here",
        )
        cmd.add_argument(
            "--health-out", default=None, metavar="PATH",
            help="write the JSON health snapshot here",
        )
        cmd.add_argument(
            "--ingest-workers", type=int, default=1, metavar="N",
            help="shard-worker processes (1 = in-process; the emitted "
                 "series is byte-identical at any worker count)",
        )
        cmd.add_argument(
            "--batch-lines", type=int, default=256, metavar="N",
            help="decode/submit records in batches of this many input "
                 "lines (1 = line-at-a-time; output bytes never change)",
        )
        cmd.add_argument(
            "--profile", default=None, metavar="PATH",
            help="run under cProfile and dump pstats data here on exit "
                 "(also prints the Stagewatch per-stage attribution)",
        )
        cmd.add_argument(
            "--trace-out", default=None, metavar="PATH",
            help="write Stagewatch span events here as NDJSON "
                 "(aggregate with `repro trace-report`)",
        )
        cmd.add_argument(
            "--trace-sample", type=int, default=16, metavar="N",
            help="time 1 of every N spans per stage (0 disables tracing; "
                 "output bytes never change either way)",
        )
        cmd.add_argument(
            "--d3", choices=("lexical", "oracle"), default=None,
            help="run an inline D3 detector in the decode path: 'lexical' "
                 "classifies every record with the committed char-bigram "
                 "model (benign verdicts never reach the engine; quality "
                 "annotations carry the measured miss/FP rates), 'oracle' "
                 "admits everything (the zero-miss baseline)",
        )
        cmd.add_argument(
            "--d3-threshold", type=float, default=0.0, metavar="MARGIN",
            help="lexical D3 decision threshold (score margin above which "
                 "a label is DGA)",
        )
        cmd.add_argument(
            "--d3-training", default=None, metavar="PATH",
            help="training-fixture JSON override for the lexical D3 model",
        )
        cmd.add_argument(
            "--doh-adoption", type=float, default=None, metavar="FRACTION",
            help="estimated encrypted-DNS adoption at this vantage; folded "
                 "into every epoch's quality.loss for interval widening "
                 "(default: the trace header's doh_adoption, else 0)",
        )

    export = sub.add_parser(
        "export-trace", help="write a synthetic trace as botmeterd NDJSON"
    )
    export.add_argument("--source", choices=("sim", "enterprise", "rekey"), default="sim")
    export.add_argument("--family", default="new_goz", choices=family_names())
    export.add_argument("--family-seed", type=int, default=7)
    export.add_argument(
        "--doh-adoption", type=float, default=0.0, metavar="FRACTION",
        help="sim/enterprise: fraction of bots per subnet resolving over "
             "encrypted DNS (invisible at the border vantage); recorded "
             "in the trace header",
    )
    export.add_argument(
        "--rekey-seed", type=int, default=21,
        help="rekey source: the seed the family migrates to at the handoff",
    )
    export.add_argument(
        "--takedown-hour", type=float, default=10.0,
        help="rekey source: hour of day 0 at which the takedown lands",
    )
    export.add_argument("--bots", type=int, default=48)
    export.add_argument("--servers", type=int, default=2)
    export.add_argument("--days", type=int, default=1)
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--sigma", type=float, default=0.0)
    export.add_argument(
        "--benign-clients", type=int, default=20,
        help="enterprise source only: benign client sample size",
    )
    export.add_argument("--out", required=True, help="trace output path")
    export.add_argument(
        "--wire", choices=("ndjson", "v2"), default="ndjson",
        help="output wire format: line-framed NDJSON (v1) or the compact "
             "binary frame format (botmeterd-wire-v2)",
    )
    export.add_argument(
        "--frame-records", type=int, default=4096, metavar="N",
        help="records per RECORDS frame when --wire v2",
    )

    convert = sub.add_parser(
        "convert-trace",
        help="convert a trace between NDJSON (v1) and binary wire v2; "
             "the direction is auto-detected from the input bytes",
    )
    convert.add_argument("trace", help="input trace (NDJSON or wire-v2)")
    convert.add_argument("--out", required=True, help="converted output path")
    convert.add_argument(
        "--frame-records", type=int, default=4096, metavar="N",
        help="records per RECORDS frame when converting to v2",
    )

    bench_summary = sub.add_parser(
        "bench-summary",
        help="aggregate repro-perf-v1 BENCH_*.json artifacts into one table",
    )
    bench_summary.add_argument(
        "dir", nargs="?", default="perf-artifacts",
        help="directory holding BENCH_*.json artifacts",
    )

    replay = sub.add_parser(
        "replay", help="drain a recorded NDJSON trace; print the landscape series"
    )
    replay.add_argument("trace", help="NDJSON trace (from `repro export-trace`)")
    replay.add_argument(
        "--engine", choices=("streaming", "batch"), default="streaming",
        help="botmeterd shards, or the per-epoch batch BotMeter reference",
    )
    _add_engine_options(replay)

    serve = sub.add_parser("serve", help="run botmeterd: follow a live NDJSON stream")
    serve.add_argument("--input", default=None,
                       help="trace file, or '-' for stdin (exclusive with --listen*)")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="accept sensor connections over TCP (port 0 = ephemeral)")
    serve.add_argument("--listen-uds", default=None, metavar="PATH",
                       help="accept sensor connections on a Unix-domain socket")
    serve.add_argument("--expect-sensors", type=int, default=None, metavar="K",
                       help="gate the deterministic merge until K distinct "
                            "sensors said hello (recommended for determinism)")
    serve.add_argument("--addr-file", default=None, metavar="PATH",
                       help="write the bound addresses here once listening "
                            "(how sensors find an ephemeral port)")
    serve.add_argument("--net-window", type=int, default=4096, metavar="N",
                       help="per-sensor buffered-line cap before reads pause")
    _add_engine_options(serve)
    serve.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="checkpoint file (enables crash recovery)")
    serve.add_argument("--checkpoint-every", type=int, default=500, metavar="N",
                       help="records between checkpoints")
    serve.add_argument("--follow", action=argparse.BooleanOptionalAction, default=True,
                       help="keep tailing the input at EOF (--no-follow: drain and exit)")
    serve.add_argument("--idle-timeout", type=float, default=None,
                       help="with --follow: exit after this many idle seconds")
    serve.add_argument("--poll-interval", type=float, default=0.1)
    serve.add_argument("--throttle", type=float, default=0.0,
                       help="seconds to sleep per record (crash-drill pacing)")
    serve.add_argument("--supervise", action="store_true",
                       help="restart the daemon on failures (bounded backoff, "
                            "injected hard faults disarmed on restart)")
    serve.add_argument("--max-restarts", type=int, default=5,
                       help="with --supervise: restart budget before giving up")
    serve.add_argument("--watchdog-deadline", type=float, default=None,
                       help="with --follow: seconds of ingest silence before "
                            "checkpointing and raising a restartable stall")

    send = sub.add_parser(
        "sensor-send",
        help="stream an NDJSON trace (or one shard) to a listening botmeterd",
    )
    send.add_argument("trace", help="NDJSON trace (from `repro export-trace`)")
    send.add_argument("--sensor", required=True, help="this sensor's id (the cursor key)")
    send.add_argument("--connect", default=None, metavar="HOST:PORT|uds:PATH",
                      help="server address (exclusive with --addr-file)")
    send.add_argument("--addr-file", default=None, metavar="PATH",
                      help="resolve the server from its --addr-file "
                           "(re-read on every reconnect attempt)")
    send.add_argument("--prefer", choices=("tcp", "uds"), default="tcp",
                      help="with --addr-file: preferred transport")
    send.add_argument("--shard", default=None, metavar="I/K",
                      help="send round-robin shard I of K (header goes to all)")
    send.add_argument("--from-ack", action="store_true",
                      help="resume from the last durable ack instead of the "
                           "welcome cursor (server discards the overlap)")
    send.add_argument("--retry-deadline", type=float, default=30.0,
                      help="give up reconnecting after this many seconds")
    send.add_argument("--throttle", type=float, default=0.0,
                      help="seconds to sleep per line (drill pacing)")

    nsmoke = sub.add_parser(
        "netingest-smoke",
        help="sharded concurrent replay over TCP and UDS, byte-diffed "
             "against the single-file replay",
    )
    nsmoke.add_argument("--workdir", required=True, help="scratch directory")
    nsmoke.add_argument("--sensors", type=int, default=3)
    nsmoke.add_argument("--bots", type=int, default=24)
    nsmoke.add_argument("--servers", type=int, default=3)
    nsmoke.add_argument("--days", type=int, default=2)
    nsmoke.add_argument("--seed", type=int, default=7)

    soak = sub.add_parser(
        "faults-soak",
        help="replay a multi-family trace through a seeded fault schedule "
             "under supervision and verify recovery, accounting and bounds",
    )
    soak.add_argument("--workdir", required=True, help="scratch directory")
    soak.add_argument(
        "--family", action="append", default=None, metavar="NAME[:SEED]",
        help="soak family (repeatable; default: murofet:3 and new_goz:7)",
    )
    soak.add_argument("--bots", type=int, default=32)
    soak.add_argument("--days", type=int, default=2)
    soak.add_argument("--servers", type=int, default=2)
    soak.add_argument("--seed", type=int, default=5, help="simulation seed")
    soak.add_argument("--faults", default=None, metavar="SPEC",
                      help="fault schedule (default: the built-in soak mix)")
    soak.add_argument("--runs", type=int, default=2,
                      help="same-seed supervised runs (determinism check)")
    soak.add_argument("--bound-factor", type=float, default=0.5)
    soak.add_argument("--bound-slack", type=float, default=3.0)
    soak.add_argument("--max-restarts", type=int, default=25)
    soak.add_argument("--report", default=None, metavar="PATH",
                      help="write the JSON soak report here (default: stdout)")

    trace = sub.add_parser(
        "trace-report",
        help="aggregate Stagewatch --trace-out file(s) into a per-stage table",
    )
    trace.add_argument(
        "trace", nargs="+",
        help="span-event NDJSON file(s) (from --trace-out); several files "
             "need --merge",
    )
    trace.add_argument(
        "--merge", action="store_true",
        help="fold multiple trace files (e.g. per-partition cluster traces) "
             "into one merged stage table, quantiles over the union",
    )
    trace.add_argument(
        "--json", action="store_true",
        help="emit the raw per-stage aggregation as JSON instead of a table",
    )

    def _add_cluster_engine_options(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--estimator", default="auto", choices=_SERVICE_ESTIMATORS)
        cmd.add_argument(
            "--grace", type=float, default=900.0,
            help="seconds past an epoch's end before it is emitted",
        )
        cmd.add_argument(
            "--reorder-capacity", type=int, default=1024,
            help="per-partition bounded reorder-buffer size",
        )
        cmd.add_argument(
            "--batch-lines", type=int, default=256, metavar="N",
            help="per-partition decode/submit batch size",
        )
        cmd.add_argument(
            "--trace-sample", type=int, default=0, metavar="N",
            help="Stagewatch sampling per partition (0 disables; merge the "
                 "per-partition files with `repro trace-report --merge`)",
        )

    creplay = sub.add_parser(
        "cluster-replay",
        help="drain a trace through an N-partition cluster; merge the "
             "landscapes into one chart (Chartmesh)",
    )
    creplay.add_argument("trace", help="NDJSON trace (from `repro export-trace`)")
    creplay.add_argument("--workdir", required=True,
                         help="cluster state directory (resumable)")
    creplay.add_argument("--partitions", type=int, default=None, metavar="N",
                         help="flat replay across N partitions "
                              "(exclusive with --plan)")
    creplay.add_argument(
        "--plan", default=None, metavar="N[:LINE],M[:LINE],...",
        help="reshard plan: run N partitions up to payload line LINE, "
             "then re-key to M, ... (the last segment runs to the end)",
    )
    creplay.add_argument("--serial", action="store_true",
                         help="run partitions in-process instead of forking "
                              "(debugging; output bytes never change)")
    creplay.add_argument(
        "--verify", action=argparse.BooleanOptionalAction, default=True,
        help="byte-compare the merged chart against a single-daemon replay",
    )
    creplay.add_argument("--checkpoint-every", type=int, default=100_000,
                         metavar="N", help="records between mid-segment checkpoints")
    _add_cluster_engine_options(creplay)

    reshard = sub.add_parser(
        "reshard",
        help="live-reshard drill: drain N partitions, re-key to M, resume; "
             "gated on byte-identity with the unpartitioned replay",
    )
    reshard.add_argument("trace", help="NDJSON trace (from `repro export-trace`)")
    reshard.add_argument("--workdir", required=True,
                         help="cluster state directory (resumable)")
    reshard.add_argument("--from", dest="from_partitions", type=int, required=True,
                         metavar="N", help="partition count before the reshard")
    reshard.add_argument("--to", dest="to_partitions", type=int, required=True,
                         metavar="M", help="partition count after the reshard")
    reshard.add_argument(
        "--split", type=int, default=None, metavar="LINE",
        help="payload line at which to drain and re-key (default: midpoint)",
    )
    reshard.add_argument("--serial", action="store_true",
                         help="run partitions in-process instead of forking")
    reshard.add_argument(
        "--verify", action=argparse.BooleanOptionalAction, default=True,
        help="the byte-identity gate (on by default; --no-verify to skip)",
    )
    reshard.add_argument("--checkpoint-every", type=int, default=100_000,
                         metavar="N", help="records between mid-segment checkpoints")
    _add_cluster_engine_options(reshard)

    cserve = sub.add_parser(
        "cluster-serve",
        help="serve Sensornet ingest through an N-partition cluster "
             "(router + partition backends)",
    )
    cserve.add_argument("--workdir", required=True,
                        help="cluster state directory (checkpoints, outputs)")
    cserve.add_argument("--partitions", type=int, default=3, metavar="N")
    cserve.add_argument("--listen", default=None, metavar="HOST:PORT",
                        help="router TCP listener (port 0 = ephemeral; "
                             "default 127.0.0.1:0 when no listener given)")
    cserve.add_argument("--listen-uds", default=None, metavar="PATH",
                        help="router Unix-domain-socket listener")
    cserve.add_argument("--addr-file", default=None, metavar="PATH",
                        help="write the router's bound addresses here")
    cserve.add_argument("--expect-sensors", type=int, default=None, metavar="K",
                        help="gate the router merge until K sensors said hello")
    cserve.add_argument("--checkpoint-every", type=int, default=500, metavar="N",
                        help="records between per-partition checkpoints")
    cserve.add_argument(
        "--supervised", action="store_true",
        help="run partitions under the Meshguard supervisor: heartbeat "
             "health, seeded-backoff restarts, durable router spooling",
    )
    cserve.add_argument("--max-partition-restarts", type=int, default=3,
                        metavar="N", help="restart budget before a partition "
                                          "is disarmed (supervised only)")
    cserve.add_argument("--mesh-seed", type=int, default=0, metavar="SEED",
                        help="seed for restart-backoff jitter (supervised only)")
    _add_cluster_engine_options(cserve)

    cchaos = sub.add_parser(
        "cluster-chaos",
        help="seeded fault drill: SIGKILL/wedge every partition mid-stream, "
             "demand zero loss, CI containment, and run-to-run determinism",
    )
    cchaos.add_argument("--workdir", required=True, help="scratch directory")
    cchaos.add_argument("--partitions", type=int, default=3)
    cchaos.add_argument("--bots", type=int, default=24)
    cchaos.add_argument("--servers", type=int, default=6)
    cchaos.add_argument("--days", type=int, default=4)
    cchaos.add_argument("--seed", type=int, default=11,
                        help="trace simulation seed")
    cchaos.add_argument("--chaos-seed", type=int, default=7,
                        help="fault schedule seed")
    cchaos.add_argument("--runs", type=int, default=2,
                        help="supervised passes (>=2 checks determinism)")
    cchaos.add_argument("--max-partition-restarts", type=int, default=3,
                        metavar="N")

    csmoke = sub.add_parser(
        "cluster-smoke",
        help="flat partitioned replay plus a midpoint reshard, byte-diffed "
             "against the single-daemon replay",
    )
    csmoke.add_argument("--workdir", required=True, help="scratch directory")
    csmoke.add_argument("--partitions", type=int, default=3)
    csmoke.add_argument("--bots", type=int, default=24)
    csmoke.add_argument("--servers", type=int, default=6)
    csmoke.add_argument("--days", type=int, default=2)
    csmoke.add_argument("--seed", type=int, default=11)

    report = sub.add_parser("report", help="full reproduction report (Markdown)")
    report.add_argument("--trials", type=int, default=3)
    report.add_argument("--skip-enterprise", action="store_true")
    report.add_argument("--out", default=None, help="write Markdown here instead of stdout")
    report.add_argument(
        "--sweeps", nargs="+", default=None,
        choices=["fig6a", "fig6b", "fig6c", "fig6d", "fig6e"],
        help="run only these Figure-6 rows (default: all five)",
    )
    report.add_argument(
        "--models", nargs="+", default=["AU", "AS", "AR", "AP"],
        choices=["AU", "AS", "AR", "AP"],
    )
    report.add_argument(
        "--workers", type=int, default=1,
        help="trial process-pool size (1 = serial; the report is identical)",
    )
    report.add_argument(
        "--seed", type=int, default=0,
        help="root seed for the per-trial seed derivation",
    )
    report.add_argument(
        "--perf-json", default=None, metavar="PATH",
        help="write the sweep perf summary (workers, wall time, throughput) as JSON",
    )

    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = SimConfig(
        family=args.family,
        n_bots=args.bots,
        n_local_servers=args.servers,
        n_days=args.days,
        seed=args.seed,
        sigma=args.sigma,
    )
    result = simulate(config)
    save_observable_csv(result.observable, args.out)
    print(f"wrote {len(result.observable)} observable lookups to {args.out}")
    for day in range(args.days):
        print(f"day {day}: actual active bots = {result.ground_truth.population(day)}")
    return 0


def _cmd_chart(args: argparse.Namespace) -> int:
    records = load_observable_csv(args.trace)
    if not records:
        print("trace is empty", file=sys.stderr)
        return 1
    dga = make_family(args.family, args.family_seed)
    estimator = args.estimator if args.estimator == "auto" else make_estimator(args.estimator)
    meter = BotMeter(
        dga,
        estimator=estimator,
        negative_ttl=args.negative_ttl,
        timestamp_granularity=args.granularity,
        timeline=Timeline(),
    )
    landscape = meter.chart(records)
    print(landscape.summary())
    return 0


def _cmd_taxonomy(_args: argparse.Namespace) -> int:
    print(render_taxonomy())
    return 0


def _cmd_families(_args: argparse.Namespace) -> int:
    print(f"{'family':<14}{'class':<6}{'θ∅':>8}{'θ∃':>5}{'θq':>7}{'δi':>8}")
    for name in family_names():
        dga = make_family(name)
        params = dga.params
        interval = f"{params.query_interval:.1f}s" + ("" if params.fixed_interval else "*")
        print(
            f"{name:<14}{classify(dga).name:<6}{params.n_nxd:>8}"
            f"{params.n_registered:>5}{params.barrel_size:>7}{interval:>8}"
        )
    print("(* = jittered interval)")
    return 0


def _write_perf_json(path: str, runner: TrialRunner) -> None:
    import json
    from pathlib import Path

    Path(path).write_text(json.dumps(runner.perf_summary(), indent=2) + "\n")


def _cmd_sweep(args: argparse.Namespace) -> int:
    runner = TrialRunner(workers=args.workers, root_seed=args.seed)
    kwargs = dict(trials=args.trials, models=tuple(args.models), runner=runner)
    if args.values is not None:
        kwargs["values"] = tuple(args.values)
    result = _SWEEPS[args.row](**kwargs)
    print(result.render())
    if args.perf_json:
        _write_perf_json(args.perf_json, runner)
    return 0


def _cmd_enterprise(args: argparse.Namespace) -> int:
    config = EnterpriseConfig(
        n_days=args.days, n_benign_clients=args.benign_clients, seed=args.seed
    )
    result = run_enterprise_study(config)
    print(result.render_table2())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .eval.report import generate_report

    runner = TrialRunner(workers=args.workers, root_seed=args.seed)
    kwargs = dict(
        trials=args.trials,
        include_enterprise=not args.skip_enterprise,
        models=tuple(args.models),
        runner=runner,
    )
    if args.sweeps is not None:
        kwargs["sweep_keys"] = tuple(args.sweeps)
    report = generate_report(**kwargs)
    markdown = report.to_markdown()
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(markdown)
        print(f"wrote report to {args.out}")
    else:
        print(markdown)
    if args.perf_json:
        _write_perf_json(args.perf_json, runner)
    return 0


def _parse_family_specs(specs: Sequence[str] | None):
    """``NAME[:SEED]`` flags -> ``{name: Dga}`` (``None`` defers to header)."""
    if not specs:
        return None
    dgas = {}
    for spec in specs:
        name, _, seed = spec.partition(":")
        dgas[name] = make_family(name, int(seed) if seed else 0)
    return dgas


def _cmd_export_trace(args: argparse.Namespace) -> int:
    from .service.wire import WIRE_VERSION, encode_header, encode_record

    if args.source == "rekey":
        # Takedown/re-key campaign: the splice carries a `register`
        # control line, which only the NDJSON wire can express.
        if args.wire == "v2":
            print("error: --source rekey requires --wire ndjson", file=sys.stderr)
            return 2
        from .service.liveview import RekeyConfig, write_rekey_trace

        rekey_config = RekeyConfig(
            family=args.family,
            base_seed=args.family_seed,
            rekey_seed=args.rekey_seed,
            n_bots=args.bots,
            n_days=args.days,
            takedown_hour=args.takedown_hour,
            seed=args.seed,
        )
        header = write_rekey_trace(args.out, rekey_config)
        count = sum(1 for _ in open(args.out)) - 1
        print(
            f"wrote {count} lines (rekey: takedown day 0, handoff to "
            f"{header['rekey']['family']} at day {header['rekey']['handoff_day']}) "
            f"to {args.out}",
            file=sys.stderr,
        )
        return 0
    if args.source == "sim":
        config = SimConfig(
            family=args.family,
            family_seed=args.family_seed,
            n_bots=args.bots,
            n_local_servers=args.servers,
            n_days=args.days,
            seed=args.seed,
            sigma=args.sigma,
            doh_adoption=args.doh_adoption,
        )
        header = {
            "schema": "botmeter-trace-v1",
            "source": "sim",
            "families": [{"name": args.family, "seed": args.family_seed}],
            "granularity": config.timestamp_granularity,
            "negative_ttl": config.negative_ttl,
            "origin": config.origin.isoformat(),
        }
        if config.doh_adoption > 0:
            header["doh_adoption"] = config.doh_adoption
        records = simulate(config).observable
    else:
        from .enterprise.trace_gen import EnterpriseTraceGenerator

        config = EnterpriseConfig(
            n_days=args.days,
            n_benign_clients=args.benign_clients,
            seed=args.seed,
            doh_adoption=args.doh_adoption,
        )
        header = {
            "schema": "botmeter-trace-v1",
            "source": "enterprise",
            "families": [
                {"name": wave.family, "seed": wave.family_seed}
                for wave in config.waves
            ],
            "granularity": config.timestamp_granularity,
            "negative_ttl": config.negative_ttl,
            "origin": config.origin.isoformat(),
        }
        if config.doh_adoption > 0:
            header["doh_adoption"] = config.doh_adoption
        records = (
            record
            for day in EnterpriseTraceGenerator(config).days()
            for record in day.observable
        )
    count = 0
    if args.wire == "v2":
        from .service.wire2 import Wire2Writer

        # The META payload carries the same envelope NDJSON puts on its
        # header line, so a v2 export converts back to byte-identical NDJSON.
        with open(args.out, "wb") as fh:
            writer = Wire2Writer(fh, frame_records=args.frame_records)
            writer.write_header({"v": WIRE_VERSION, "type": "header", **header})
            for record in records:
                writer.add(record)
                count += 1
            writer.close()
    else:
        with open(args.out, "w") as fh:
            fh.write(encode_header(header) + "\n")
            for record in records:
                fh.write(encode_record(record) + "\n")
                count += 1
    print(
        f"wrote {count} records ({args.source}, {args.wire}) to {args.out}",
        file=sys.stderr,
    )
    return 0


def _cmd_convert_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .service.wire2 import ndjson_to_wire2, sniff_wire2, wire2_to_ndjson_lines

    raw = Path(args.trace).read_bytes()
    if sniff_wire2(raw[:4]):
        lines = wire2_to_ndjson_lines(raw)
        payload = b"\n".join(lines) + (b"\n" if lines else b"")
        Path(args.out).write_bytes(payload)
        print(
            f"converted v2 -> ndjson: {len(lines)} lines to {args.out}",
            file=sys.stderr,
        )
    else:
        with open(args.out, "wb") as fh:
            reader = ndjson_to_wire2(
                raw.splitlines(), fh, frame_records=args.frame_records
            )
        print(
            f"converted ndjson -> v2: {reader.records} records, "
            f"{reader.corrupt} quarantined to {args.out}",
            file=sys.stderr,
        )
    return 0


def _cmd_bench_summary(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    directory = Path(args.dir)
    artifacts = sorted(directory.glob("BENCH_*.json"))
    if not artifacts:
        print(f"no BENCH_*.json artifacts under {directory}", file=sys.stderr)
        return 1
    rows = []
    for path in artifacts:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping unreadable artifact {path}: {exc}", file=sys.stderr)
            continue
        if payload.get("schema") != "repro-perf-v1":
            print(f"skipping foreign-schema artifact {path}", file=sys.stderr)
            continue
        for key in sorted(payload):
            value = payload[key]
            if (
                key in ("schema", "cpu_count")
                or isinstance(value, bool)
                or not isinstance(value, (int, float))
            ):
                continue
            rows.append((path.name, key, value))
    if not rows:
        print(f"no repro-perf-v1 metrics under {directory}", file=sys.stderr)
        return 1
    name_w = max(len(name) for name, _, _ in rows)
    key_w = max(len(key) for _, key, _ in rows)
    print(f"{'artifact':<{name_w}}  {'metric':<{key_w}}  value")
    print(f"{'-' * name_w}  {'-' * key_w}  -----")
    for name, key, value in rows:
        rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
        print(f"{name:<{name_w}}  {key:<{key_w}}  {rendered}")
    return 0


def _print_stage_attribution(daemon) -> None:
    """The Stagewatch per-stage table for ``--profile`` runs."""
    tracer = getattr(daemon, "tracer", None)
    if tracer is None:
        return
    summary = tracer.summary()
    if not summary["stages"]:
        return
    from .service.tracing import render_stage_table

    print(render_stage_table(summary), file=sys.stderr)


def _run_profiled(args: argparse.Namespace, fn, daemon=None):
    """Run ``fn`` — under cProfile when ``--profile PATH`` was given."""
    if getattr(args, "profile", None) is None:
        return fn()
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return fn()
    finally:
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(
            f"profile written to {args.profile} "
            f"(inspect with `python -m pstats {args.profile}`)",
            file=sys.stderr,
        )
        if daemon is not None:
            # Supervised runs pass a getter: the daemon instance only
            # exists once the supervisor has built (or rebuilt) it.
            _print_stage_attribution(daemon() if callable(daemon) else daemon)


def _cmd_replay(args: argparse.Namespace) -> int:
    from .service.daemon import BotMeterDaemon, batch_series, families_from_header
    from .service.wire import NdjsonReader, encode_landscape

    dgas = _parse_family_specs(args.family)
    if args.engine == "streaming":
        daemon = BotMeterDaemon(
            args.trace,
            out_path=args.out,
            families=dgas,
            estimator=args.estimator,
            grace=args.grace,
            negative_ttl=args.negative_ttl,
            timestamp_granularity=args.granularity,
            reorder_capacity=args.reorder_capacity,
            policy=args.policy,
            follow=False,
            max_corrupt=args.max_corrupt,
            metrics_path=args.metrics_out,
            health_path=args.health_out,
            fault_injector=_make_injector(args),
            deadletter_path=args.deadletter,
            batch_lines=args.batch_lines,
            ingest_workers=args.ingest_workers,
            trace_out=args.trace_out,
            trace_sample=args.trace_sample,
            d3=args.d3,
            d3_threshold=args.d3_threshold,
            d3_training=args.d3_training,
            doh_adoption=args.doh_adoption,
        )
        return _run_profiled(args, daemon.run, daemon=daemon)

    reader = NdjsonReader(max_corrupt=args.max_corrupt)
    if args.deadletter:
        from .service.deadletter import MAX_LINE_SNIPPET, DeadLetterQueue

        dlq = DeadLetterQueue(args.deadletter)
        dlq.reset()
        reader.on_corrupt = lambda line, why: dlq.quarantine(
            "corrupt", line=line[:MAX_LINE_SNIPPET], why=why
        )
    injector = _make_injector(args)
    if injector is not None:
        with open(args.trace, "r") as fh:
            records = list(reader.read(injector.wrap(iter(fh))))
    else:
        with open(args.trace, "rb") as fh:
            records = list(reader.read(fh))
    header = reader.header or {}
    if dgas is None:
        if reader.header is None:
            print("no --family given and the trace has no header", file=sys.stderr)
            return 1
        dgas = families_from_header(reader.header)
    granularity = (
        args.granularity
        if args.granularity is not None
        else float(header.get("granularity", 0.1))
    )
    timeline = None
    if "origin" in header:
        import datetime as _dtmod

        timeline = Timeline(_dtmod.date.fromisoformat(header["origin"]))
    series = _run_profiled(
        args,
        lambda: batch_series(
            records,
            dgas,
            estimator=args.estimator,
            negative_ttl=args.negative_ttl,
            timestamp_granularity=granularity,
            timeline=timeline,
        ),
    )
    lines = [
        encode_landscape(epoch.family, epoch.day_index, epoch.landscape)
        for epoch in series
    ]
    if args.out:
        from pathlib import Path

        Path(args.out).write_text("".join(line + "\n" for line in lines))
    else:
        for line in lines:
            print(line)
    return 0


def _make_injector(args: argparse.Namespace, disarmed=None):
    if getattr(args, "faults", None) is None:
        return None
    from .service.faults import FaultInjector

    return FaultInjector(args.faults, disarmed=disarmed)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.daemon import BotMeterDaemon

    net_mode = args.listen is not None or args.listen_uds is not None
    if net_mode and args.input:
        print("serve: --input and --listen/--listen-uds are exclusive", file=sys.stderr)
        return 2
    if not net_mode and not args.input:
        print("serve: need --input, --listen or --listen-uds", file=sys.stderr)
        return 2
    if net_mode and args.supervise:
        print("serve: --supervise is file-ingest only", file=sys.stderr)
        return 2
    if net_mode and args.faults:
        # The injector hooks the raw file-line path, which network
        # ingest bypasses; refusing beats silently not injecting.
        print("serve: --faults is file-ingest only", file=sys.stderr)
        return 2
    input_label = args.input if args.input else f"net:{args.listen or args.listen_uds}"

    def build_daemon(disarmed=None) -> BotMeterDaemon:
        return BotMeterDaemon(
            input_label,
            out_path=args.out,
            checkpoint_path=args.checkpoint,
            families=_parse_family_specs(args.family),
            estimator=args.estimator,
            grace=args.grace,
            negative_ttl=args.negative_ttl,
            timestamp_granularity=args.granularity,
            reorder_capacity=args.reorder_capacity,
            policy=args.policy,
            checkpoint_every=args.checkpoint_every,
            follow=args.follow,
            idle_timeout=args.idle_timeout,
            poll_interval=args.poll_interval,
            throttle=args.throttle,
            max_corrupt=args.max_corrupt,
            metrics_path=args.metrics_out,
            health_path=args.health_out,
            fault_injector=_make_injector(args, disarmed),
            deadletter_path=args.deadletter,
            watchdog_deadline=args.watchdog_deadline,
            batch_lines=args.batch_lines,
            ingest_workers=args.ingest_workers,
            trace_out=args.trace_out,
            trace_sample=args.trace_sample,
            d3=args.d3,
            d3_threshold=args.d3_threshold,
            d3_training=args.d3_training,
            doh_adoption=args.doh_adoption,
        )

    if net_mode:
        from .service.netingest import NetIngestServer

        tcp = None
        if args.listen:
            host, sep, port = args.listen.rpartition(":")
            if not sep or not port.isdigit():
                print(f"serve: --listen wants HOST:PORT, got {args.listen!r}",
                      file=sys.stderr)
                return 2
            tcp = (host or "127.0.0.1", int(port))
        daemon = build_daemon()
        server = NetIngestServer(
            daemon,
            tcp=tcp,
            uds=args.listen_uds,
            expect_sensors=args.expect_sensors,
            window=args.net_window,
            addr_file=args.addr_file,
            idle_timeout=args.idle_timeout,
        )
        return _run_profiled(args, server.serve, daemon=daemon)

    if not args.supervise:
        daemon = build_daemon()
        return _run_profiled(args, daemon.run, daemon=daemon)

    from .service.supervisor import Supervisor, SupervisorGaveUp

    supervisor = Supervisor(build_daemon, max_restarts=args.max_restarts)
    try:
        return _run_profiled(args, supervisor.run, daemon=lambda: supervisor.daemon)
    except SupervisorGaveUp as exc:
        print(f"supervisor gave up: {exc}", file=sys.stderr)
        return 1


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from .service.tracing import render_trace_report, trace_report

    if len(args.trace) > 1 and not args.merge:
        print(
            "trace-report: several trace files need --merge "
            "(one merged stage table over the union)",
            file=sys.stderr,
        )
        return 2
    try:
        # --merge tolerates crash debris: a partition SIGKILLed before
        # its first header flush leaves a missing/empty trace file, and
        # the merged report should not die on it.
        report = trace_report(*args.trace, skip_missing=args.merge)
    except (OSError, ValueError) as exc:
        print(f"trace-report: {exc}", file=sys.stderr)
        return 1
    for path in report.get("skipped_files", ()):
        print(
            f"trace-report: warning: skipped missing/empty trace file {path}",
            file=sys.stderr,
        )
    try:
        if args.json:
            import json as _json

            print(_json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_trace_report(report))
    except BrokenPipeError:
        # Downstream pager/head closed early: not an error worth a trace.
        # Point stdout at devnull so the interpreter's exit-time flush
        # doesn't raise the same error again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


def _cmd_sensor_send(args: argparse.Namespace) -> int:
    import json as _json

    from .service.netingest import (
        SensorClient,
        SensorError,
        parse_address,
        read_address_file,
        shard_trace_lines,
    )

    if bool(args.connect) == bool(args.addr_file):
        print("sensor-send: need exactly one of --connect / --addr-file",
              file=sys.stderr)
        return 2
    if args.connect:
        address = parse_address(args.connect)
    else:
        addr_file, prefer = args.addr_file, args.prefer
        address = lambda: read_address_file(addr_file, prefer=prefer)  # noqa: E731
    shard = None
    if args.shard:
        index, sep, count = args.shard.partition("/")
        if not sep or not index.isdigit() or not count.isdigit():
            print(f"sensor-send: --shard wants I/K, got {args.shard!r}",
                  file=sys.stderr)
            return 2
        shard = (int(index), int(count))
    client = SensorClient(
        address,
        args.sensor,
        resume="ack" if args.from_ack else "welcome",
        retry_deadline=args.retry_deadline,
        throttle=args.throttle,
    )
    try:
        from pathlib import Path

        lines = Path(args.trace).read_bytes().splitlines()
        if shard is not None:
            lines = shard_trace_lines(lines, *shard)
        report = client.replay_lines(lines)
    except SensorError as exc:
        print(f"sensor-send: {exc}", file=sys.stderr)
        return 1
    print(_json.dumps(report.__dict__, sort_keys=True))
    return 0


def _cmd_netingest_smoke(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .service.netingest import SmokeFailure, run_smoke

    try:
        run_smoke(
            Path(args.workdir),
            sensors=args.sensors,
            bots=args.bots,
            servers=args.servers,
            days=args.days,
            seed=args.seed,
            log=sys.stderr,
        )
    except SmokeFailure as exc:
        print(f"NETINGEST SMOKE FAILED: {exc}", file=sys.stderr)
        return 1
    print("netingest-smoke passed", file=sys.stderr)
    return 0


def _cmd_faults_soak(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .service.soak import SoakConfig, SoakFailure, run_soak

    kwargs = dict(
        workdir=Path(args.workdir),
        bots=args.bots,
        days=args.days,
        servers=args.servers,
        sim_seed=args.seed,
        runs=args.runs,
        bound_factor=args.bound_factor,
        bound_slack=args.bound_slack,
        max_restarts=args.max_restarts,
    )
    if args.family:
        kwargs["families"] = tuple(
            (name, int(seed) if seed else 0)
            for name, _, seed in (spec.partition(":") for spec in args.family)
        )
    if args.faults:
        kwargs["faults"] = args.faults
    try:
        report = run_soak(SoakConfig(**kwargs), log_stream=sys.stderr)
    except SoakFailure as exc:
        print(f"SOAK FAILED: {exc}", file=sys.stderr)
        return 1
    payload = _json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
    if args.report:
        Path(args.report).write_text(payload)
        print(f"soak passed; report written to {args.report}", file=sys.stderr)
    else:
        print(payload, end="")
    return 0


def _parse_plan_spec(spec: str):
    """``N[:LINE],M[:LINE],...`` -> ``[(n_partitions, end_line|None)]``."""
    plan = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        n, _, end = chunk.partition(":")
        if not n.isdigit() or (end and not end.isdigit()):
            raise ValueError(f"bad plan segment {chunk!r} (want N or N:LINE)")
        plan.append((int(n), int(end) if end else None))
    if not plan:
        raise ValueError("empty plan")
    return plan


def _cmd_cluster_replay(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .service.cluster import ClusterError, ClusterVerifyError, cluster_replay

    if (args.partitions is None) == (args.plan is None):
        print("cluster-replay: need exactly one of --partitions / --plan",
              file=sys.stderr)
        return 2
    plan = None
    if args.plan is not None:
        try:
            plan = _parse_plan_spec(args.plan)
        except ValueError as exc:
            print(f"cluster-replay: {exc}", file=sys.stderr)
            return 2
    try:
        report = cluster_replay(
            Path(args.trace),
            Path(args.workdir),
            partitions=args.partitions,
            plan=plan,
            verify=args.verify,
            serial=args.serial,
            estimator=args.estimator,
            grace=args.grace,
            reorder_capacity=args.reorder_capacity,
            batch_lines=args.batch_lines,
            checkpoint_every=args.checkpoint_every,
            trace_sample=args.trace_sample,
            log=sys.stderr,
        )
    except ClusterVerifyError as exc:
        print(f"CLUSTER VERIFY FAILED: {exc}", file=sys.stderr)
        return 1
    except ClusterError as exc:
        print(f"cluster-replay: {exc}", file=sys.stderr)
        return 1
    print(_json.dumps(report, indent=2, sort_keys=True))
    return 0


def _cmd_reshard(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .service.cluster import (
        ClusterError,
        ClusterVerifyError,
        cluster_replay,
        split_header,
    )

    trace = Path(args.trace)
    split = args.split
    if split is None:
        try:
            payload = split_header(trace.read_bytes().splitlines())[1]
        except OSError as exc:
            print(f"reshard: {exc}", file=sys.stderr)
            return 1
        split = len(payload) // 2
    plan = [(args.from_partitions, split), (args.to_partitions, None)]
    try:
        report = cluster_replay(
            trace,
            Path(args.workdir),
            plan=plan,
            verify=args.verify,
            serial=args.serial,
            estimator=args.estimator,
            grace=args.grace,
            reorder_capacity=args.reorder_capacity,
            batch_lines=args.batch_lines,
            checkpoint_every=args.checkpoint_every,
            trace_sample=args.trace_sample,
            log=sys.stderr,
        )
    except ClusterVerifyError as exc:
        print(f"RESHARD VERIFY FAILED: {exc}", file=sys.stderr)
        return 1
    except ClusterError as exc:
        print(f"reshard: {exc}", file=sys.stderr)
        return 1
    report["plan"] = [[n, end] for n, end in plan]
    print(_json.dumps(report, indent=2, sort_keys=True))
    return 0


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from .service.cluster import ClusterError, cluster_serve

    tcp = None
    if args.listen:
        host, sep, port = args.listen.rpartition(":")
        if not sep or not port.isdigit():
            print(f"cluster-serve: --listen wants HOST:PORT, got {args.listen!r}",
                  file=sys.stderr)
            return 2
        tcp = (host or "127.0.0.1", int(port))
    try:
        report = cluster_serve(
            Path(args.workdir),
            partitions=args.partitions,
            tcp=tcp,
            uds=args.listen_uds,
            addr_file=args.addr_file,
            expect_sensors=args.expect_sensors,
            estimator=args.estimator,
            grace=args.grace,
            reorder_capacity=args.reorder_capacity,
            batch_lines=args.batch_lines,
            checkpoint_every=args.checkpoint_every,
            trace_sample=args.trace_sample,
            supervised=args.supervised,
            max_partition_restarts=args.max_partition_restarts,
            mesh_seed=args.mesh_seed,
            log=sys.stderr,
        )
    except ClusterError as exc:
        print(f"cluster-serve: {exc}", file=sys.stderr)
        return 1
    print(_json.dumps(report, indent=2, sort_keys=True))
    return int(report.get("exit_code", 0) or 0)


def _cmd_cluster_chaos(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .service.cluster import ClusterError
    from .service.meshguard import run_cluster_chaos
    from .service.netingest import SmokeFailure

    try:
        report = run_cluster_chaos(
            Path(args.workdir),
            partitions=args.partitions,
            bots=args.bots,
            servers=args.servers,
            days=args.days,
            seed=args.seed,
            chaos_seed=args.chaos_seed,
            runs=args.runs,
            max_partition_restarts=args.max_partition_restarts,
            log=sys.stderr,
        )
    except (SmokeFailure, ClusterError) as exc:
        print(f"CLUSTER CHAOS FAILED: {exc}", file=sys.stderr)
        return 1
    print(
        f"cluster-chaos passed: {report['runs']} run(s) byte-identical, "
        f"{report['degraded_rows']} degraded rows "
        f"({report['ci_contained']} CI-contained), "
        f"{report['restated_rows']} restated",
        file=sys.stderr,
    )
    return 0


def _cmd_cluster_smoke(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .service.cluster import run_cluster_smoke
    from .service.netingest import SmokeFailure

    try:
        run_cluster_smoke(
            Path(args.workdir),
            partitions=args.partitions,
            bots=args.bots,
            servers=args.servers,
            days=args.days,
            seed=args.seed,
            log=sys.stderr,
        )
    except SmokeFailure as exc:
        print(f"CLUSTER SMOKE FAILED: {exc}", file=sys.stderr)
        return 1
    print("cluster-smoke passed", file=sys.stderr)
    return 0


_HANDLERS = {
    "simulate": _cmd_simulate,
    "chart": _cmd_chart,
    "taxonomy": _cmd_taxonomy,
    "families": _cmd_families,
    "sweep": _cmd_sweep,
    "enterprise": _cmd_enterprise,
    "report": _cmd_report,
    "export-trace": _cmd_export_trace,
    "convert-trace": _cmd_convert_trace,
    "bench-summary": _cmd_bench_summary,
    "replay": _cmd_replay,
    "serve": _cmd_serve,
    "sensor-send": _cmd_sensor_send,
    "netingest-smoke": _cmd_netingest_smoke,
    "faults-soak": _cmd_faults_soak,
    "trace-report": _cmd_trace_report,
    "cluster-replay": _cmd_cluster_replay,
    "reshard": _cmd_reshard,
    "cluster-serve": _cmd_cluster_serve,
    "cluster-chaos": _cmd_cluster_chaos,
    "cluster-smoke": _cmd_cluster_smoke,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
