"""Shared estimator interfaces and result types.

Every analytical model in the library (§IV) consumes the same inputs —
the matched, cache-filtered lookups of one local server plus an
:class:`EstimationContext` describing the observation window and the
target DGA — and produces a :class:`PopulationEstimate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from ..dga.base import Dga
from ..timebase import SECONDS_PER_DAY, Timeline

__all__ = [
    "MatchedLookup",
    "EstimationContext",
    "PopulationEstimate",
    "Estimator",
]


@dataclass(frozen=True, slots=True)
class MatchedLookup:
    """One vantage-point lookup that matched the target DGA's domains."""

    timestamp: float
    server: str
    domain: str
    day_index: int


@dataclass(frozen=True)
class EstimationContext:
    """Everything an estimator may need besides the lookups themselves.

    Attributes:
        dga: the target DGA (parameters, daily pools, registered sets).
        timeline: simulation/calendar time base.
        window_start: observation-window start (seconds).
        window_end: observation-window end (seconds, exclusive).
        negative_ttl: ``δl`` of the local negative caches, seconds.
        timestamp_granularity: coarseness of collected timestamps,
            seconds; estimators use it as their timing tolerance.
        detected_nxds_by_day: optional D3 detection windows — for each day
            index, the subset of the pool's NXDs the D3 algorithm knows.
            ``None`` means a perfect D3 (full pool coverage).
    """

    dga: Dga
    timeline: Timeline
    window_start: float
    window_end: float
    negative_ttl: float = 7_200.0
    timestamp_granularity: float = 0.1
    detected_nxds_by_day: dict[int, frozenset[str]] | None = None

    def __post_init__(self) -> None:
        if self.window_end <= self.window_start:
            raise ValueError("observation window must have positive length")
        if self.negative_ttl <= 0:
            raise ValueError("negative TTL must be positive")

    @property
    def n_epochs(self) -> int:
        """Number of (possibly partial) one-day epochs in the window."""
        first = int(self.window_start // SECONDS_PER_DAY)
        last = int((self.window_end - 1e-9) // SECONDS_PER_DAY)
        return last - first + 1

    def epoch_bounds(self) -> list[tuple[int, float, float]]:
        """``(day_index, start, end)`` for each epoch the window touches."""
        bounds = []
        first = int(self.window_start // SECONDS_PER_DAY)
        last = int((self.window_end - 1e-9) // SECONDS_PER_DAY)
        for day in range(first, last + 1):
            start = max(self.window_start, day * SECONDS_PER_DAY)
            end = min(self.window_end, (day + 1) * SECONDS_PER_DAY)
            bounds.append((day, start, end))
        return bounds

    def detected_nxds(self, day_index: int) -> frozenset[str]:
        """The NXDs the D3 algorithm can match on ``day_index``."""
        if self.detected_nxds_by_day is not None:
            window = self.detected_nxds_by_day.get(day_index)
            if window is not None:
                return window
        day = self.timeline.date_for_day(day_index)
        return frozenset(self.dga.nxdomains(day))


@dataclass
class PopulationEstimate:
    """The output of one estimator run.

    ``value`` is the headline estimate — the average active population
    per epoch over the observation window, matching the paper's
    evaluation protocol ("average the estimates over the number of
    epochs").
    """

    value: float
    estimator: str
    per_epoch: dict[int, float] = field(default_factory=dict)
    details: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"population estimate must be >= 0, got {self.value}")


@runtime_checkable
class Estimator(Protocol):
    """An analytical population-estimation model (§IV)."""

    name: str

    def estimate(
        self, lookups: Sequence[MatchedLookup], context: EstimationContext
    ) -> PopulationEstimate:
        """Estimate the active bot population behind one local server."""
        ...


def average_per_epoch(per_epoch: dict[int, float]) -> float:
    """Average of per-epoch estimates (0.0 when no epoch produced one)."""
    if not per_epoch:
        return 0.0
    return sum(per_epoch.values()) / len(per_epoch)
