"""DGA-domain matching (component ③ of Figure 2).

The matcher is the front end of BotMeter: it filters the vantage-point
stream down to the lookups that belong to the target DGA, using either
plain per-day domain lists (the D3 detection window) or algorithmic
patterns (regular expressions), and tags every match with its epoch and
forwarding server.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from ..dns.message import ForwardedLookup
from ..timebase import SECONDS_PER_DAY
from .estimator import MatchedLookup

__all__ = ["DgaDomainMatcher", "PatternMatcher", "group_by_server"]


class DgaDomainMatcher:
    """Matches a vantage-point stream against per-day domain sets.

    ``windows`` maps a day index to the set of domains known to belong to
    the target DGA on that day (typically a D3 detection window over the
    daily pool).  A lookup matches when its domain is in the window of
    the epoch containing its timestamp; the previous day's window is also
    consulted so activations that straddle midnight keep matching.
    """

    def __init__(self, windows: dict[int, frozenset[str] | set[str]]) -> None:
        self._windows = {day: frozenset(domains) for day, domains in windows.items()}

    @property
    def days(self) -> list[int]:
        return sorted(self._windows)

    def window_for(self, day_index: int) -> frozenset[str]:
        """The detection window of one day (empty if unknown)."""
        return self._windows.get(day_index, frozenset())

    def match(self, records: Iterable[ForwardedLookup]) -> list[MatchedLookup]:
        """All records whose domain belongs to the target DGA."""
        matches: list[MatchedLookup] = []
        for record in records:
            day = int(record.timestamp // SECONDS_PER_DAY)
            if record.domain in self.window_for(day):
                matched_day = day
            elif record.domain in self.window_for(day - 1):
                matched_day = day - 1
            else:
                continue
            matches.append(
                MatchedLookup(record.timestamp, record.server, record.domain, matched_day)
            )
        return matches

    def match_rate(self, records: Sequence[ForwardedLookup]) -> float:
        """Fraction of the stream that matches (diagnostics)."""
        if not records:
            return 0.0
        return len(self.match(records)) / len(records)


class PatternMatcher:
    """Matches on algorithmic patterns (anchored regular expressions).

    This is the "algorithmic patterns of DGA domains" input mode of
    Figure 2: when the analyst has reverse-engineered the label shape
    (e.g. 28 hex characters under ``.net`` for newGoZ) but not the exact
    daily pool.  Matches carry the epoch of their timestamp.
    """

    def __init__(self, patterns: Iterable[str]) -> None:
        compiled = []
        for pattern in patterns:
            compiled.append(re.compile(pattern if pattern.endswith("$") else pattern + "$"))
        if not compiled:
            raise ValueError("need at least one pattern")
        self._patterns = compiled

    def matches_domain(self, domain: str) -> bool:
        """Whether any pattern matches ``domain`` exactly."""
        return any(p.match(domain) for p in self._patterns)

    def match(self, records: Iterable[ForwardedLookup]) -> list[MatchedLookup]:
        """All records whose domain matches one of the patterns."""
        return [
            MatchedLookup(
                r.timestamp, r.server, r.domain, int(r.timestamp // SECONDS_PER_DAY)
            )
            for r in records
            if self.matches_domain(r.domain)
        ]


def group_by_server(matches: Iterable[MatchedLookup]) -> dict[str, list[MatchedLookup]]:
    """Partition matched lookups by forwarding local server.

    Landscape charting estimates one population per local server; this is
    the partition step (matches arrive time-sorted and stay time-sorted
    within each server).
    """
    by_server: dict[str, list[MatchedLookup]] = {}
    for match in matches:
        by_server.setdefault(match.server, []).append(match)
    return by_server
