"""Timing estimator MT (§IV-B, Algorithm 1).

MT attributes DNS lookups to distinct bots purely from temporal traits:

1. within one epoch, two lookups of the *same* NXD come from different
   bots (a bot never re-queries a domain during an activation);
2. two lookups separated by more than the maximum activation duration
   ``θq·δi`` belong to different bots;
3. a bot's lookups form a train with fixed period ``δi``, so two lookups
   whose gap is not a multiple of ``δi`` (within the timestamp
   granularity) belong to different bots.

The estimator greedily absorbs each lookup into the first compatible
bot entry and reports the number of entries as the population.  It is
applicable to every DGA model, but degrades when caching masks whole
activations (AU) or when ``δi`` is finer than the collection timestamp
granularity (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .estimator import (
    EstimationContext,
    MatchedLookup,
    PopulationEstimate,
    average_per_epoch,
)

__all__ = ["TimingEstimator"]


@dataclass
class _BotEntry:
    """One hypothesised bot: its first-lookup time and queried domains."""

    first_seen: float
    domains: set[str] = field(default_factory=set)


class TimingEstimator:
    """Algorithm 1 of the paper.

    Args:
        interval_tolerance: absolute slack (seconds) allowed on the
            heuristic-#3 congruence test; defaults to the context's
            timestamp granularity when ``None``.
    """

    name = "timing"

    def __init__(self, interval_tolerance: float | None = None) -> None:
        if interval_tolerance is not None and interval_tolerance < 0:
            raise ValueError("interval tolerance must be >= 0")
        self._tolerance = interval_tolerance

    def _count_bots(
        self,
        lookups: Sequence[MatchedLookup],
        barrel_size: int,
        query_interval: float | None,
        tolerance: float,
    ) -> int:
        """Run the Algorithm-1 classification over one epoch's lookups."""
        entries: list[_BotEntry] = []
        max_duration = (
            barrel_size * query_interval if query_interval is not None else None
        )
        for lookup in lookups:
            absorbed = False
            for entry in entries:
                # Heuristic #1: a bot never repeats a domain in an epoch.
                if lookup.domain in entry.domains:
                    continue
                # Heuristic #2: an activation lasts at most θq·δi.
                if (
                    max_duration is not None
                    and entry.first_seen + max_duration <= lookup.timestamp
                ):
                    continue
                # Heuristic #3: lookups of one bot are δi-periodic.  Only
                # meaningful when δi is fixed and coarser than the
                # timestamp granularity.
                if query_interval is not None and query_interval > tolerance:
                    remainder = (lookup.timestamp - entry.first_seen) % query_interval
                    distance = min(remainder, query_interval - remainder)
                    if distance > tolerance + 1e-9:
                        continue
                entry.domains.add(lookup.domain)
                absorbed = True
                break
            if not absorbed:
                entries.append(_BotEntry(lookup.timestamp, {lookup.domain}))
        return len(entries)

    def estimate(
        self, lookups: Sequence[MatchedLookup], context: EstimationContext
    ) -> PopulationEstimate:
        """Run Algorithm 1 per epoch and average over the window."""
        params = context.dga.params
        query_interval = params.query_interval if params.fixed_interval else None
        tolerance = (
            self._tolerance
            if self._tolerance is not None
            else context.timestamp_granularity
        )

        per_epoch: dict[int, float] = {}
        for day, start, end in context.epoch_bounds():
            epoch_lookups = [
                l for l in lookups if start <= l.timestamp < end
            ]
            per_epoch[day] = float(
                self._count_bots(
                    sorted(epoch_lookups, key=lambda l: l.timestamp),
                    params.barrel_size,
                    query_interval,
                    tolerance,
                )
            )
        return PopulationEstimate(
            value=average_per_epoch(per_epoch),
            estimator=self.name,
            per_epoch=per_epoch,
            details={"tolerance": tolerance, "query_interval": query_interval},
        )
