"""Poisson estimator MP (§IV-C, Eqn 1, Figure 4).

Uniform-barrel DGAs (AU) give every bot the *same* daily barrel, so once
one bot's activation populates the local negative cache, every other
activation within the next TTL window is completely invisible at the
vantage point.  MP recovers the masked activations by modelling bot
activations as a Poisson process:

* visible activations mark the starts of TTL windows;
* the gaps ``Δi`` between the end of one TTL window and the next visible
  activation are exponential with the activation rate ``λ``;
* ``E(λ) = n / Σ Δi`` over ``n`` visible activations, and the expected
  total (visible + masked) count in the window is

  ``E(N) = E(λ) · Σ (Δi + δl) = n + n²·δl / Σ Δi``        (Eqn 1)

``Δ1`` is the elapsed time from the window start to the first visible
activation (footnote 2 of the paper).
"""

from __future__ import annotations

from typing import Sequence

from .estimator import (
    EstimationContext,
    MatchedLookup,
    PopulationEstimate,
    average_per_epoch,
)

__all__ = ["PoissonEstimator", "visible_activation_times"]


def visible_activation_times(
    timestamps: Sequence[float], burst_gap: float
) -> list[float]:
    """Cluster a sorted lookup-time sequence into visible activations.

    A visible activation is a dense train of forwarded lookups; a new
    activation starts whenever the gap from the previous lookup exceeds
    ``burst_gap``.  Returns the start time of each burst.
    """
    if burst_gap <= 0:
        raise ValueError(f"burst_gap must be positive, got {burst_gap}")
    starts: list[float] = []
    previous: float | None = None
    for t in timestamps:
        if previous is None or t - previous > burst_gap:
            starts.append(t)
        previous = t
    return starts


class PoissonEstimator:
    """Eqn (1) applied per epoch, averaged over the observation window.

    Args:
        burst_gap: gap threshold (seconds) separating visible
            activations; ``None`` derives it from the DGA's query
            interval and the negative TTL (large enough to bridge the
            jitter inside a burst, far below ``δl``).
        tail_correction: also count the censored exposure after the last
            TTL window (no activation observed there, which is itself
            information about ``λ``).  With the correction off the
            estimate is literally Eqn (1); with it on (default) the rate
            uses the full uncovered exposure ``Σ Δi + tail`` and
            ``E(N) = λ̂ · window``, which reduces the small-``n`` upward
            bias of the reciprocal ``1/ΣΔi``.
    """

    name = "poisson"

    def __init__(
        self, burst_gap: float | None = None, tail_correction: bool = True
    ) -> None:
        if burst_gap is not None and burst_gap <= 0:
            raise ValueError("burst_gap must be positive")
        self._burst_gap = burst_gap
        self._tail_correction = tail_correction

    def _derive_burst_gap(self, context: EstimationContext) -> float:
        interval = context.dga.params.query_interval
        # Inside a burst consecutive forwarded lookups are ~δi apart
        # (up to jitter); between bursts they are ~δl apart.  An order of
        # magnitude above δi and well below δl separates the two regimes.
        gap = max(10.0 * interval, 4.0 * context.timestamp_granularity, 1.0)
        return min(gap, context.negative_ttl / 4.0)

    def estimate(
        self, lookups: Sequence[MatchedLookup], context: EstimationContext
    ) -> PopulationEstimate:
        """Apply Eqn (1) per epoch and average over the window."""
        burst_gap = self._burst_gap or self._derive_burst_gap(context)
        ttl = context.negative_ttl

        per_epoch: dict[int, float] = {}
        details: dict[str, object] = {"burst_gap": burst_gap, "epoch_stats": {}}
        for day, start, end in context.epoch_bounds():
            times = sorted(
                l.timestamp for l in lookups if start <= l.timestamp < end
            )
            if not times:
                per_epoch[day] = 0.0
                continue
            bursts = visible_activation_times(times, burst_gap)
            n = len(bursts)
            # Δ1 = first activation − window start; Δi = gap between the
            # end of the previous TTL window and the next activation.
            gaps = [bursts[0] - start]
            for prev, cur in zip(bursts, bursts[1:]):
                gaps.append(max(0.0, cur - (prev + ttl)))
            gap_sum = sum(gaps)
            if self._tail_correction:
                gap_sum += max(0.0, end - (bursts[-1] + ttl))
            if gap_sum <= 0:
                # All activations arrived back-to-back at TTL expiry: the
                # rate is unresolvable from this epoch; bound it using
                # the collection granularity as the minimal measurable gap.
                gap_sum = max(context.timestamp_granularity, 1e-6)
            rate = n / gap_sum
            if self._tail_correction:
                per_epoch[day] = rate * (end - start)
            else:
                per_epoch[day] = n + (n * n * ttl) / gap_sum
            # Expose the sufficient statistics so callers can build
            # uncertainty intervals (see repro.core.confidence).
            details["epoch_stats"][day] = {  # type: ignore[index]
                "visible_activations": n,
                "exposure": gap_sum,
                "window": end - start,
            }
        return PopulationEstimate(
            value=average_per_epoch(per_epoch),
            estimator=self.name,
            per_epoch=per_epoch,
            details=details,
        )
