"""The DGA taxonomy of §III / Figure 3 and estimator selection.

The taxonomy is the cross product of query-pool models (horizontal axis)
and query-barrel models (vertical axis).  The paper names and analyses
the four drain-and-replenish classes — AU (uniform), AS (sampling), AR
(randomcut), AP (permutation) — and maps known malware families onto the
grid; cells with no spotted family are marked "?".

Estimator applicability follows §V-A: MT applies to every class; MP is
designed for AU (identical barrels ⇒ cache-masked activations); MB is
designed for AR (global sequential order ⇒ circle segments).
"""

from __future__ import annotations

import enum

from ..dga.base import BarrelClass, Dga, PoolClass
from .bernoulli import BernoulliEstimator
from .estimator import Estimator
from .poisson import PoissonEstimator
from .timing import TimingEstimator

__all__ = [
    "ModelClass",
    "classify",
    "TAXONOMY_GRID",
    "taxonomy_cell",
    "recommended_estimator",
    "applicable_estimators",
    "render_taxonomy",
]


class ModelClass(enum.Enum):
    """The four analysed drain-and-replenish DGA classes."""

    AU = "uniform-barrel"
    AS = "sampling-barrel"
    AR = "randomcut-barrel"
    AP = "permutation-barrel"


_BARREL_TO_CLASS = {
    BarrelClass.UNIFORM: ModelClass.AU,
    BarrelClass.SAMPLING: ModelClass.AS,
    BarrelClass.RANDOMCUT: ModelClass.AR,
    BarrelClass.PERMUTATION: ModelClass.AP,
}

#: Figure 3: known families per (pool, barrel) cell; empty tuples are the
#: "?" cells (models not yet spotted in the wild as of the paper).
TAXONOMY_GRID: dict[tuple[PoolClass, BarrelClass], tuple[str, ...]] = {
    (PoolClass.DRAIN_REPLENISH, BarrelClass.UNIFORM): ("murofet", "srizbi", "torpig", "ramnit", "qakbot"),
    (PoolClass.DRAIN_REPLENISH, BarrelClass.RANDOMCUT): ("new_goz", "evasive_goz"),
    (PoolClass.DRAIN_REPLENISH, BarrelClass.PERMUTATION): ("necurs",),
    (PoolClass.DRAIN_REPLENISH, BarrelClass.SAMPLING): ("conficker_c",),
    (PoolClass.SLIDING_WINDOW, BarrelClass.UNIFORM): ("ranbyus", "pushdo"),
    (PoolClass.SLIDING_WINDOW, BarrelClass.RANDOMCUT): (),
    (PoolClass.SLIDING_WINDOW, BarrelClass.PERMUTATION): (),
    (PoolClass.SLIDING_WINDOW, BarrelClass.SAMPLING): (),
    (PoolClass.MULTIPLE_MIXTURE, BarrelClass.UNIFORM): (),
    (PoolClass.MULTIPLE_MIXTURE, BarrelClass.RANDOMCUT): (),
    (PoolClass.MULTIPLE_MIXTURE, BarrelClass.PERMUTATION): (),
    (PoolClass.MULTIPLE_MIXTURE, BarrelClass.SAMPLING): ("pykspa",),
}


def taxonomy_cell(dga: Dga) -> tuple[PoolClass, BarrelClass]:
    """The (pool, barrel) coordinates of a DGA in the Figure-3 grid."""
    return dga.pool_model.pool_class, dga.barrel_model.barrel_class


def classify(dga: Dga) -> ModelClass:
    """The analysed model class of a DGA, keyed by its barrel model.

    The paper's analytical models depend on the *barrel* behaviour; pool
    variations shift which domains exist but not how a bot walks them, so
    sliding-window and multiple-mixture DGAs inherit the class of their
    barrel model.
    """
    return _BARREL_TO_CLASS[dga.barrel_model.barrel_class]


def applicable_estimators(dga: Dga) -> list[str]:
    """Names of the estimators applicable to this DGA (§V-A protocol)."""
    model = classify(dga)
    names = ["timing"]
    if model is ModelClass.AU:
        names.append("poisson")
    if model is ModelClass.AR:
        names.append("bernoulli")
    return names


def recommended_estimator(dga: Dga) -> Estimator:
    """The estimator the paper finds most accurate for this DGA class.

    MP for AU, MB for AR, MT otherwise (AS/AP, where MT performs well
    thanks to their strong per-bot randomness).
    """
    model = classify(dga)
    if model is ModelClass.AU:
        return PoissonEstimator()
    if model is ModelClass.AR:
        return BernoulliEstimator()
    return TimingEstimator()


def render_taxonomy() -> str:
    """ASCII rendering of Figure 3 (families per pool × barrel cell)."""
    pools = list(PoolClass)
    barrels = [
        BarrelClass.SAMPLING,
        BarrelClass.PERMUTATION,
        BarrelClass.RANDOMCUT,
        BarrelClass.UNIFORM,
    ]
    cell_texts = {
        cell: (", ".join(families) if families else "?")
        for cell, families in TAXONOMY_GRID.items()
    }
    col_width = max(
        max(len(text) for text in cell_texts.values()),
        max(len(p.value) for p in pools),
    ) + 2
    header = " " * 14 + "".join(p.value.ljust(col_width) for p in pools)
    lines = [header, "-" * len(header)]
    for barrel in barrels:
        cells = [cell_texts[(pool, barrel)].ljust(col_width) for pool in pools]
        lines.append(barrel.value.ljust(14) + "".join(cells))
    return "\n".join(lines)
