"""Occupancy combinatorics behind the Bernoulli estimator (§IV-D).

The paper expresses Theorem 1 through three ingredients:

* the barrel-consumption distribution ``Pr(q = i)`` (Eqn 2) — how many
  NXDs a single randomcut bot queries;
* ``g(l̃, m)`` — the probability that ``m`` occupied start slots
  (including both endpoints) of a length-``l̃`` range leave no gap larger
  than ``θq``, computed by inclusion–exclusion over compositions;
* ``f(l̃, n, m)`` — increments of the classic occupancy probability that
  ``n`` uniform balls occupy exactly ``m`` of ``l̃`` boxes (the Stirling-
  number expression), which we evaluate through a numerically stable
  log-space surjection recurrence instead of alternating sums.

From these, ``V(l̃, n) = Σ_m P(exactly m occupied)·P(valid | m)`` is the
probability that ``n`` bots with i.i.d. uniform start slots reproduce an
observed segment exactly; it is monotone in ``n`` with limit 1, so
``h(n) = V(n) − V(n−1)`` is a proper distribution and
``E(N_L) = Σ n·h(n) = Σ_{n≥0} (1 − V(n))`` is the expected number of
bots required to cover the segment.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

__all__ = [
    "barrel_consumption_pmf",
    "expected_barrel_consumption",
    "gap_constrained_subset_count",
    "log_gap_subset_table",
    "segment_validity_curve",
    "log_occupancy_table",
    "coverage_validity_curve",
    "expected_bots_to_cover",
]

_NEG_INF = float("-inf")


def barrel_consumption_pmf(
    n_registered: int, n_nxd: int, barrel_size: int
) -> np.ndarray:
    """``Pr(q = i)`` for ``i = 0..θq`` — Eqn (2) of the paper.

    Served through the process-local :mod:`repro.core.kernels` cache
    (bit-exact memoisation); the returned array is read-only.
    """
    from .kernels import shared_cache

    return shared_cache().barrel_pmf(n_registered, n_nxd, barrel_size)


def _barrel_consumption_pmf_impl(
    n_registered: int, n_nxd: int, barrel_size: int
) -> np.ndarray:
    """Uncached Eqn (2).

    ``q`` is the number of NXDs a bot queries: it stops after ``i`` NXDs
    by hitting a valid domain (case a) or aborts with ``q = θq`` having
    seen no valid domain (case b).  Computed in log space from binomial
    coefficients; exact hypergeometric structure, so the pmf sums to 1.
    """
    if n_registered < 0 or n_nxd < 0:
        raise ValueError("domain counts must be >= 0")
    total = n_registered + n_nxd
    if not 1 <= barrel_size <= total:
        raise ValueError(f"θq must be in [1, {total}], got {barrel_size}")

    pmf = np.zeros(barrel_size + 1)
    if n_registered == 0:
        pmf[barrel_size] = 1.0
        return pmf

    log_total = math.lgamma(total + 1)
    for i in range(barrel_size):
        if i > n_nxd:
            break
        # (a): θ∃/(i+1) · C(θ∅, i) / C(θ∃+θ∅, i+1)
        log_c_nxd = (
            math.lgamma(n_nxd + 1)
            - math.lgamma(i + 1)
            - math.lgamma(n_nxd - i + 1)
        )
        log_c_total = (
            log_total - math.lgamma(i + 2) - math.lgamma(total - i)
        )
        pmf[i] = (
            n_registered / (i + 1) * math.exp(log_c_nxd - log_c_total)
        )
    if barrel_size <= n_nxd:
        # (b): C(θ∅, θq) / C(θ∃+θ∅, θq)
        log_c_nxd = (
            math.lgamma(n_nxd + 1)
            - math.lgamma(barrel_size + 1)
            - math.lgamma(n_nxd - barrel_size + 1)
        )
        log_c_total = (
            log_total
            - math.lgamma(barrel_size + 1)
            - math.lgamma(total - barrel_size + 1)
        )
        pmf[barrel_size] = math.exp(log_c_nxd - log_c_total)
    return pmf


def expected_barrel_consumption(
    n_registered: int, n_nxd: int, barrel_size: int
) -> float:
    """``E[q]`` — mean NXDs queried per activation under Eqn (2)."""
    pmf = barrel_consumption_pmf(n_registered, n_nxd, barrel_size)
    return float(np.dot(pmf, np.arange(len(pmf))))


@lru_cache(maxsize=4096)
def gap_constrained_subset_count(length: int, m: int, gap: int) -> int:
    """Number of ``m``-subsets of ``{1..length}`` that contain both 1 and
    ``length`` and whose consecutive elements differ by at most ``gap``.

    Equals the number of compositions of ``length − 1`` into ``m − 1``
    parts, each in ``[1, gap]`` — the inclusion–exclusion numerator of
    the paper's ``g``.  Exact integer arithmetic.
    """
    if length < 1 or m < 1 or gap < 1:
        raise ValueError("length, m and gap must be positive")
    if length == 1:
        return 1 if m == 1 else 0
    if m == 1:
        return 0  # cannot contain both distinct endpoints
    parts = m - 1
    total = length - 1
    count = 0
    for k in range(parts + 1):
        remaining = total - k * gap
        if remaining < parts:
            break
        term = math.comb(parts, k) * math.comb(remaining - 1, parts - 1)
        count += term if k % 2 == 0 else -term
    return count


def log_gap_subset_table(max_last: int, m_max: int, gap: int) -> np.ndarray:
    """``log A(j, m)`` for ``j = 1..max_last``, ``m = 1..m_max`` where
    ``A(j, m)`` counts ``m``-subsets of ``{1..j}`` with minimum 1,
    maximum ``j``, and consecutive gaps at most ``gap``.

    Served through the :mod:`repro.core.kernels` cache under the exact
    argument tuple (the peak-rescaling below makes entries depend on the
    table extents, so unlike the occupancy table it is never sliced from
    a superset); the returned array is read-only.
    """
    from .kernels import shared_cache

    return shared_cache().gap_subsets(max_last, m_max, gap)


def _log_gap_subset_table_impl(max_last: int, m_max: int, gap: int) -> np.ndarray:
    """Uncached gap-subset table.

    Returned array has shape ``(m_max + 1, max_last + 1)`` (index 0 rows/
    columns unused, ``-inf`` for impossible combinations).  Computed by a
    sliding-window prefix-sum recurrence with floating-point rescaling —
    all terms are positive, so no cancellation occurs:

        ``A(j, m) = Σ_{i=j−gap}^{j−1} A(i, m−1)``.
    """
    if max_last < 1 or m_max < 1 or gap < 1:
        raise ValueError("max_last, m_max and gap must be positive")
    log_table = np.full((m_max + 1, max_last + 1), _NEG_INF)
    # Row m=1: only the singleton {1}.
    row = np.zeros(max_last + 1)
    row[1] = 1.0
    offset = 0.0
    log_table[1, 1] = 0.0
    for m in range(2, m_max + 1):
        csum = np.concatenate(([0.0], np.cumsum(row)))
        new_row = np.zeros(max_last + 1)
        # new_row[j] = sum of row[max(1, j-gap) .. j-1]
        js = np.arange(2, max_last + 1)
        hi = csum[js]          # prefix sum up to j-1
        lo = csum[np.maximum(js - gap, 0)]
        new_row[2:] = hi - lo
        peak = new_row.max()
        if peak <= 0:
            break  # no valid subsets for any larger m
        if peak > 1e250:
            new_row /= peak
            offset += math.log(peak)
        row = new_row
        with np.errstate(divide="ignore"):
            log_table[m] = np.where(row > 0, np.log(np.maximum(row, 1e-320)) + offset, _NEG_INF)
    return log_table


def segment_validity_curve(
    observed_len: int,
    gap: int,
    n_max: int,
    ends_at_boundary: bool,
) -> tuple[int, np.ndarray]:
    """``(slots, V)`` for one observed segment — the Bernoulli
    estimator's hot path, served through the :mod:`repro.core.kernels`
    cache under the exact argument tuple (read-only curve)."""
    from .kernels import shared_cache

    return shared_cache().segment_curve(observed_len, gap, n_max, ends_at_boundary)


def _segment_validity_curve_impl(
    observed_len: int,
    gap: int,
    n_max: int,
    ends_at_boundary: bool,
) -> tuple[int, np.ndarray]:
    """``(slots, V)`` for one observed segment: the number of allowed
    start slots and the curve ``V(n)`` — the probability that ``n`` bots
    with i.i.d. uniform starts among those slots reproduce the segment
    exactly.

    For an **m-segment** the allowed start slots are
    ``slots = observed_len − θq + 1`` (every covering bot consumed its
    full barrel); validity requires slots 1 and ``slots`` occupied and
    start-gaps ≤ ``θq``.  For a **b-segment** the allowed slots are the
    whole segment; validity requires slot 1 occupied, gaps ≤ ``θq``, and
    the last start within ``θq`` of the boundary.
    """
    if observed_len < 1:
        raise ValueError("segment length must be >= 1")
    if ends_at_boundary:
        slots = observed_len
    else:
        # An m-segment shorter than the barrel only arises from detection
        # holes; degrade gracefully to a single-slot segment.
        slots = max(1, observed_len - gap + 1)
    if slots == 1:
        curve = np.ones(n_max + 1)
        curve[0] = 0.0
        return 1, curve

    m_cap = min(slots, n_max)
    log_a = log_gap_subset_table(slots, m_cap, gap)
    log_counts = np.full(m_cap + 1, _NEG_INF)
    if ends_at_boundary:
        lo = max(1, slots - gap + 1)
        # log Σ_{j=lo}^{slots} A(j, m) per m.
        for m in range(1, m_cap + 1):
            tail = log_a[m, lo:]
            finite = tail[np.isfinite(tail)]
            if finite.size:
                peak = finite.max()
                log_counts[m] = peak + math.log(np.exp(finite - peak).sum())
    else:
        log_counts[1:] = log_a[1:, slots]

    log_occ = log_occupancy_table(slots, n_max, m_cap)
    log_terms = log_occ + log_counts[None, :]
    row_max = np.max(log_terms, axis=1, keepdims=True)
    safe_max = np.where(np.isfinite(row_max), row_max, 0.0)
    curve = np.exp(safe_max[:, 0]) * np.sum(np.exp(log_terms - safe_max), axis=1)
    return slots, np.clip(curve, 0.0, 1.0)


def log_occupancy_table(n_boxes: int, n_max: int, m_max: int) -> np.ndarray:
    """``log P(n uniform balls land onto exactly one given m-subset and
    cover it)`` for ``n = 0..n_max``, ``m = 0..m_max``.

    Served through the :mod:`repro.core.kernels` cache: entry ``(n, m)``
    of the recurrence depends only on smaller indices, so a larger
    cached table is sliced bit-exactly down to the request.  The
    returned array is a read-only view.
    """
    from .kernels import shared_cache

    return shared_cache().occupancy(n_boxes, n_max, m_max)


def _log_occupancy_table_impl(n_boxes: int, n_max: int, m_max: int) -> np.ndarray:
    """Uncached occupancy table.

    This is ``log(T(n, m) / n_boxes^n)`` with ``T`` the surjection count
    ``m!·S(n, m)``; computed via the positive recurrence
    ``T(n, m) = m·(T(n−1, m) + T(n−1, m−1))`` entirely in log space, so
    no alternating-sum cancellation occurs.
    """
    if n_boxes < 1:
        raise ValueError("need at least one box")
    if n_max < 0 or m_max < 0:
        raise ValueError("table extents must be >= 0")
    table = np.full((n_max + 1, m_max + 1), _NEG_INF)
    table[0, 0] = 0.0
    log_boxes = math.log(n_boxes)
    ms = np.arange(1, m_max + 1, dtype=float)
    log_m_over_boxes = np.log(ms) - log_boxes
    for n in range(1, n_max + 1):
        prev = table[n - 1]
        # logaddexp(prev[m], prev[m-1]) vectorised over m = 1..m_max.
        table[n, 1:] = log_m_over_boxes + np.logaddexp(prev[1:], prev[:-1])
    return table


def coverage_validity_curve(
    length: int, gap: int, n_max: int
) -> np.ndarray:
    """``V(n)`` for ``n = 0..n_max``: probability that ``n`` bots with
    i.i.d. uniform start slots in ``{1..length}`` occupy a valid
    configuration (both endpoints occupied, consecutive gaps ≤ ``gap``).

    ``V`` is non-decreasing with limit 1.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    m_max = length
    log_occ = log_occupancy_table(length, n_max, m_max)
    log_counts = np.full(m_max + 1, _NEG_INF)
    for m in range(1, m_max + 1):
        count = gap_constrained_subset_count(length, m, gap)
        if count > 0:
            # math.log on an int of arbitrary size would overflow float
            # conversion for huge counts; go through log2 via bit_length.
            log_counts[m] = _log_of_int(count)
    with np.errstate(over="ignore"):
        log_terms = log_occ + log_counts[None, :]
    # V(n) = Σ_m count(m)·P_occ(n, m); logsumexp row-wise.
    row_max = np.max(log_terms, axis=1, keepdims=True)
    safe_max = np.where(np.isfinite(row_max), row_max, 0.0)
    curve = np.exp(safe_max[:, 0]) * np.sum(
        np.exp(log_terms - safe_max), axis=1
    )
    return np.clip(curve, 0.0, 1.0)


def _log_of_int(value: int) -> float:
    """Natural log of a (possibly huge) positive Python int."""
    if value <= 0:
        raise ValueError("value must be positive")
    bits = value.bit_length()
    if bits <= 512:
        return math.log(value)
    shift = bits - 512
    return math.log(value >> shift) + shift * math.log(2.0)


def expected_bots_to_cover(
    length: int,
    barrel_size: int,
    ends_at_boundary: bool,
    rel_tol: float = 1e-6,
    n_cap: int = 100_000,
) -> float:
    """``E(N_L)`` of Theorem 1 for a segment of ``length`` observed NXDs.

    For an m-segment every covering bot consumed its full barrel, so the
    start slots span ``l̃ = length − θq + 1`` positions with endpoint and
    gap constraints.  For a b-segment the rightmost start slot is
    marginalised over ``l̃ ∈ [max(1, length−θq+1), length]`` (the paper's
    ``ll``/``lu``), mirroring bots that stopped at the arc boundary.

    Computed as ``Σ_{n≥0} (1 − V(n))``, truncated once the tail is below
    ``rel_tol`` of the running sum.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    if barrel_size < 1:
        raise ValueError("barrel size must be >= 1")

    if ends_at_boundary:
        lo = max(1, length - barrel_size + 1)
        lengths = list(range(lo, length + 1))
    else:
        lengths = [max(1, length - barrel_size + 1)]

    if not ends_at_boundary:
        return _expected_hitting_number(lengths[0], barrel_size, rel_tol, n_cap)

    # For b-segments, V_b(n) = Σ_{l̃} P(rightmost occupied slot = l̃ and
    # configuration valid); equivalently count valid subsets of {1..L}
    # whose maximum is ≥ L−θq+1 — evaluated in one curve over L slots.
    return _expected_hitting_number_boundary(length, barrel_size, rel_tol, n_cap)


def _valid_curve_boundary(length: int, gap: int, n_max: int) -> np.ndarray:
    """V(n) for the b-segment condition: subsets of ``{1..length}``
    containing 1, with gaps ≤ ``gap``, reaching within ``gap`` of the
    boundary (maximum element ≥ length − gap + 1)."""
    m_max = length
    log_occ = log_occupancy_table(length, n_max, m_max)
    log_counts = np.full(m_max + 1, _NEG_INF)
    lo = max(1, length - gap + 1)
    for m in range(1, m_max + 1):
        count = 0
        for last in range(lo, length + 1):
            count += gap_constrained_subset_count(last, m, gap)
        if count > 0:
            log_counts[m] = _log_of_int(count)
    log_terms = log_occ + log_counts[None, :]
    row_max = np.max(log_terms, axis=1, keepdims=True)
    safe_max = np.where(np.isfinite(row_max), row_max, 0.0)
    curve = np.exp(safe_max[:, 0]) * np.sum(np.exp(log_terms - safe_max), axis=1)
    return np.clip(curve, 0.0, 1.0)


def _sum_tail(curve_fn, length: int, gap: int, rel_tol: float, n_cap: int) -> float:
    """``Σ_{n≥0} (1 − V(n))`` with geometric growth of the table."""
    n_hi = max(16, 2 * length)
    while True:
        curve = curve_fn(length, gap, n_hi)
        tail = 1.0 - curve
        expectation = float(np.sum(tail))
        if tail[-1] < rel_tol * max(expectation, 1.0) or n_hi >= n_cap:
            # Geometric tail bound: 1−V(n) shrinks at least geometrically
            # once the endpoints dominate; extrapolate the residual.
            last = float(tail[-1])
            if 0 < last < 1 and len(tail) >= 2 and tail[-2] > 0:
                ratio = min(0.999999, last / float(tail[-2]))
                expectation += last * ratio / (1.0 - ratio)
            return expectation
        n_hi *= 2


def _expected_hitting_number(
    length: int, gap: int, rel_tol: float, n_cap: int
) -> float:
    if length == 1:
        return 1.0
    return _sum_tail(coverage_validity_curve, length, gap, rel_tol, n_cap)


def _expected_hitting_number_boundary(
    length: int, gap: int, rel_tol: float, n_cap: int
) -> float:
    if length == 1:
        return 1.0
    return _sum_tail(_valid_curve_boundary, length, gap, rel_tol, n_cap)
