"""Renewal estimator MR — an extension beyond the paper.

The paper's conclusion names "combining temporal and semantic traits of
DNS lookups to develop more effective bot population estimators" as
future work (§VII, direction 1).  This module implements one such
combination for randomcut DGAs (AR).

Idea.  MB consumes only the *set* of distinct NXDs, which saturates once
the circle is densely covered (large ``N·θq/C``): nearly every position
is observed and the coverage pattern carries almost no information about
``N``.  But the vantage point also sees *how often* each NXD is
re-forwarded: a domain's lookups are masked for ``δl`` after each
forwarded one, so the forwarded-lookup count of domain ``d`` over a
window ``W`` follows an alternating-renewal process with visible rate

    ``rate_d = λ_d / (1 + λ_d·δl)``,   ``λ_d = N·w_d/(C·δe)``,

where ``w_d`` is the position's coverage weight (how many bot starting
positions query it).  Matching the *total* matched-lookup count against
``Σ_d W·rate_d`` yields a population estimate whose information content
grows with ``N`` — exactly where MB fades.

Like MB it needs no per-client data; unlike MB it uses the negative-cache
TTL ``δl`` and is (mildly) sensitive to duplicate queries and record
loss.

Generalisation.  The same renewal identity holds for *every* barrel
class once ``w_d/C`` is replaced by the class's per-bot coverage
probability ``c_d`` — the chance one activation queries domain ``d``:

* **AR (randomcut)** — ``c_d = w_d/C`` with the circle weights;
* **AS (sampling) / AP (permutation)** — ``c_d = E[q]/θ∅`` uniformly
  (exchangeable positions, Eqn-2 expected consumption);
* **AU (uniform)** — ``c_d = 1`` for the NXDs preceding the first
  registered domain in generation order (every bot walks the same
  prefix) and 0 beyond it.

so one estimator covers the whole Figure-3 taxonomy, including the AP
column where neither MP nor MB applies.
"""

from __future__ import annotations

import datetime as _dt
from typing import Sequence

import numpy as np

from ..dga.base import BarrelClass, Dga
from .bernoulli import _coverage_weights
from .combinatorics import expected_barrel_consumption
from .estimator import (
    EstimationContext,
    MatchedLookup,
    PopulationEstimate,
    average_per_epoch,
)
from .segments import DgaCircle

__all__ = [
    "RenewalEstimator",
    "expected_forwarded_lookups",
    "coverage_probabilities",
]

_N_CAP = 1e8


def coverage_probabilities(dga: Dga, date: _dt.date) -> dict[str, float]:
    """Per-NXD probability that one activation queries the domain.

    Dispatches on the DGA's barrel class (see module docstring).  Domains
    with zero probability (an AU pool's post-C2 tail) are omitted.
    """
    params = dga.params
    barrel_class = dga.barrel_model.barrel_class
    pool = dga.pool(date)
    registered = dga.registered(date)

    if barrel_class is BarrelClass.RANDOMCUT:
        circle = DgaCircle(pool, registered)
        weights = _coverage_weights(circle, params.barrel_size)
        return {d: w / circle.size for d, w in weights.items()}

    if barrel_class in (BarrelClass.SAMPLING, BarrelClass.PERMUTATION):
        expected_q = expected_barrel_consumption(
            params.n_registered, params.n_nxd, params.barrel_size
        )
        coverage = expected_q / params.n_nxd
        return {d: coverage for d in pool if d not in registered}

    if barrel_class is BarrelClass.UNIFORM:
        covered: dict[str, float] = {}
        for domain in pool[: params.barrel_size]:
            if domain in registered:
                break
            covered[domain] = 1.0
        return covered

    raise ValueError(f"unsupported barrel class: {barrel_class}")


def expected_forwarded_lookups(
    coverages: Sequence[float],
    population: float,
    negative_ttl: float,
    window: float,
    epoch: float = 86_400.0,
) -> float:
    """``E[total forwarded matched lookups]`` for ``population`` bots.

    Sums the per-position visible renewal rate over the per-bot coverage
    probabilities ``c_d`` (see :func:`coverage_probabilities`).
    """
    if window <= 0 or epoch <= 0:
        raise ValueError("window and epoch must be positive")
    if negative_ttl < 0:
        raise ValueError("negative_ttl must be >= 0")
    c = np.asarray(coverages, dtype=float)
    if np.any(c < 0) or np.any(c > 1):
        raise ValueError("coverage probabilities must be in [0, 1]")
    rates = population * c / epoch
    return float(np.sum(window * rates / (1.0 + rates * negative_ttl)))


class RenewalEstimator:
    """Per-epoch renewal inversion of the matched-lookup volume.

    Applicable to every barrel class in the taxonomy (dispatch via
    :func:`coverage_probabilities`).
    """

    name = "renewal"

    def estimate(
        self, lookups: Sequence[MatchedLookup], context: EstimationContext
    ) -> PopulationEstimate:
        """Invert each epoch's matched-lookup volume to a population."""
        per_epoch: dict[int, float] = {}
        for day, start, end in context.epoch_bounds():
            date = context.timeline.date_for_day(day)
            coverage_by_domain = coverage_probabilities(context.dga, date)
            observed = sum(
                1
                for l in lookups
                if start <= l.timestamp < end and l.domain in coverage_by_domain
            )
            if observed == 0:
                per_epoch[day] = 0.0
                continue
            coverages = list(coverage_by_domain.values())
            window = end - start

            def excess(population: float) -> float:
                return observed - expected_forwarded_lookups(
                    coverages,
                    population,
                    context.negative_ttl,
                    window,
                )

            per_epoch[day] = _bisect_decreasing(excess)
        return PopulationEstimate(
            value=average_per_epoch(per_epoch),
            estimator=self.name,
            per_epoch=per_epoch,
        )


def _bisect_decreasing(excess) -> float:
    """Root of a decreasing function of the population on (0, ∞)."""
    lo, hi = 0.0, 1.0
    while excess(hi) > 0:
        lo = hi
        hi *= 2.0
        if hi > _N_CAP:
            return _N_CAP
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if excess(mid) > 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
