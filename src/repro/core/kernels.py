"""Shared estimator-kernel cache (§IV-D hot tables).

Every ``(family × server)`` shard of the sharded engine runs the same
Bernoulli machinery over the same family parameters, so the expensive
Theorem-1 ingredients — :func:`~repro.core.combinatorics.log_occupancy_table`,
:func:`~repro.core.combinatorics.log_gap_subset_table`,
:func:`~repro.core.combinatorics.barrel_consumption_pmf` and the composed
:func:`~repro.core.combinatorics.segment_validity_curve` — are recomputed
with identical arguments over and over.  :class:`KernelCache` memoises
them process-locally and can spill to / warm from an ``.npz`` sidecar
next to the daemon's checkpoint, so a restarted (or freshly forked
ingest-worker) process skips the warm-up.

Exactness is non-negotiable: the streamed series must stay byte-identical
to the uncached engine, so the cache only ever returns bit-exact values.

* The occupancy table's log recurrence computes entry ``(n, m)`` from
  entries with smaller indices only, independent of the table extents —
  so a larger cached table can be *sliced* to serve a smaller request
  bit-exactly.  Requests grow the stored table to the running maximum
  extent.
* The gap-subset table uses peak-rescaling (values depend on the extent
  through the renormalisation points), and the validity curve inherits
  that — both are cached under their **exact** argument tuple only.

All returned arrays are read-only views; callers that need to mutate
must copy.  The cache is process-local and not thread-safe — the
sharded service gives each worker process its own instance.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import struct
import zipfile
from collections import OrderedDict
from pathlib import Path
from typing import Any

import numpy as np
from numpy.lib import format as _npy_format

__all__ = ["KERNEL_CACHE_SCHEMA", "KernelCache", "shared_cache", "reset_shared_cache"]

KERNEL_CACHE_SCHEMA = "botmeter-kernels-v1"

#: Per-kind LRU capacity; generous for any realistic family mix while
#: bounding memory in adversarial workloads.
_MAX_ENTRIES = 512


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


#: Zip local-file-header layout: signature, then name/extra lengths at
#: +26/+28 — what it takes to find a STORED member's data offset.
_ZIP_LOCAL_MAGIC = b"PK\x03\x04"
_ZIP_LOCAL_LEN = struct.Struct("<HH")  # (name_len, extra_len) at offset 26


def _map_sidecar(path: Path) -> dict[str, np.ndarray] | None:
    """Zero-copy view of an uncompressed ``.npz``: every member array
    served from ONE shared read-only ``mmap`` of the file.

    ``np.load(mmap_mode=...)`` silently copies for ``.npz`` archives, so
    this walks the zip itself: the central directory gives each member's
    local-header offset; the local header (30 bytes + name + extra)
    gives the ``.npy`` data offset; the ``.npy`` header gives dtype and
    shape; ``np.frombuffer`` over the mmap does the rest.  Forked ingest
    workers and cluster partitions that map the same sidecar share the
    physical pages — warm kernel tables cost zero copies per process.

    Returns ``None`` whenever the file is not cleanly mappable (a
    compressed legacy sidecar, a pickled member, Fortran order, a torn
    header …) — the caller falls back to the copying loader.  The mmap
    stays alive exactly as long as any returned array does (each holds
    it as its buffer base), so a later ``os.replace`` of the sidecar
    path never invalidates served views.
    """
    try:
        with open(path, "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        with zipfile.ZipFile(path) as archive:
            members = archive.infolist()
            arrays: dict[str, np.ndarray] = {}
            for info in members:
                if info.compress_type != zipfile.ZIP_STORED:
                    return None
                header_offset = info.header_offset
                if mapped[header_offset : header_offset + 4] != _ZIP_LOCAL_MAGIC:
                    return None
                name_len, extra_len = _ZIP_LOCAL_LEN.unpack_from(
                    mapped, header_offset + 26
                )
                data_offset = header_offset + 30 + name_len + extra_len
                head = io.BytesIO(
                    mapped[data_offset : data_offset + min(info.file_size, 4096)]
                )
                version = _npy_format.read_magic(head)
                if version == (1, 0):
                    shape, fortran, dtype = _npy_format.read_array_header_1_0(head)
                elif version == (2, 0):
                    shape, fortran, dtype = _npy_format.read_array_header_2_0(head)
                else:
                    return None
                if fortran or dtype.hasobject:
                    return None
                count = 1
                for dim in shape:
                    count *= int(dim)
                array = np.frombuffer(
                    mapped, dtype=dtype, count=count, offset=data_offset + head.tell()
                ).reshape(shape)
                name = info.filename
                arrays[name[:-4] if name.endswith(".npy") else name] = array
            return arrays
    except (OSError, ValueError, KeyError, struct.error, zipfile.BadZipFile):
        return None


class KernelCache:
    """Memoised estimator kernels with optional ``.npz`` persistence.

    Four kinds of entries, keyed as in :mod:`repro.core.combinatorics`:

    * ``occ``  — ``log_occupancy_table(n_boxes, n_max, m_max)``, stored
      per ``n_boxes`` at the largest extents requested so far (slice-safe);
    * ``gap``  — ``log_gap_subset_table(max_last, m_max, gap)``, exact key;
    * ``pmf``  — ``barrel_consumption_pmf(θ∃, θ∅, θq)``, exact key;
    * ``seg``  — ``segment_validity_curve(len, θq, n_max, boundary)``,
      exact key, value ``(slots, curve)``.
    """

    def __init__(self, max_entries: int = _MAX_ENTRIES) -> None:
        self.max_entries = max(1, int(max_entries))
        # n_boxes -> (n_max, m_max, table)
        self._occ: OrderedDict[int, tuple[int, int, np.ndarray]] = OrderedDict()
        self._gap: OrderedDict[tuple[int, int, int], np.ndarray] = OrderedDict()
        self._pmf: OrderedDict[tuple[int, int, int], np.ndarray] = OrderedDict()
        self._seg: OrderedDict[tuple[int, int, int, bool], tuple[int, np.ndarray]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self._dirty = False

    # -- bookkeeping ---------------------------------------------------------

    def _touch(self, store: OrderedDict, key: Any) -> None:
        store.move_to_end(key)
        self.hits += 1

    def _admit(self, store: OrderedDict, key: Any, value: Any) -> None:
        store[key] = value
        store.move_to_end(key)
        while len(store) > self.max_entries:
            store.popitem(last=False)
        self.misses += 1
        self._dirty = True

    @property
    def dirty(self) -> bool:
        """Entries were added since the last :meth:`save`."""
        return self._dirty

    def __len__(self) -> int:
        return len(self._occ) + len(self._gap) + len(self._pmf) + len(self._seg)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        self._occ.clear()
        self._gap.clear()
        self._pmf.clear()
        self._seg.clear()
        self.hits = 0
        self.misses = 0
        self._dirty = False

    # -- kernels -------------------------------------------------------------

    def occupancy(self, n_boxes: int, n_max: int, m_max: int) -> np.ndarray:
        """``log_occupancy_table``, served from the per-``n_boxes`` superset.

        The recurrence is extent-independent, so slicing a larger stored
        table yields bit-exactly the array a direct call would build.
        """
        from . import combinatorics as _comb

        stored = self._occ.get(n_boxes)
        if stored is not None:
            stored_n, stored_m, table = stored
            if n_max <= stored_n and m_max <= stored_m:
                self._touch(self._occ, n_boxes)
                return table[: n_max + 1, : m_max + 1]
            n_max, m_max = max(n_max, stored_n), max(m_max, stored_m)
        table = _readonly(_comb._log_occupancy_table_impl(n_boxes, n_max, m_max))
        self._admit(self._occ, n_boxes, (n_max, m_max, table))
        return table

    def gap_subsets(self, max_last: int, m_max: int, gap: int) -> np.ndarray:
        """``log_gap_subset_table`` under its exact key (the peak-rescaled
        recurrence makes values extent-dependent, so no slicing)."""
        from . import combinatorics as _comb

        key = (max_last, m_max, gap)
        cached = self._gap.get(key)
        if cached is not None:
            self._touch(self._gap, key)
            return cached
        table = _readonly(_comb._log_gap_subset_table_impl(max_last, m_max, gap))
        self._admit(self._gap, key, table)
        return table

    def barrel_pmf(self, n_registered: int, n_nxd: int, barrel_size: int) -> np.ndarray:
        """``barrel_consumption_pmf`` under its exact key."""
        from . import combinatorics as _comb

        key = (n_registered, n_nxd, barrel_size)
        cached = self._pmf.get(key)
        if cached is not None:
            self._touch(self._pmf, key)
            return cached
        pmf = _readonly(_comb._barrel_consumption_pmf_impl(n_registered, n_nxd, barrel_size))
        self._admit(self._pmf, key, pmf)
        return pmf

    def segment_curve(
        self, observed_len: int, gap: int, n_max: int, ends_at_boundary: bool
    ) -> tuple[int, np.ndarray]:
        """``segment_validity_curve`` under its exact key."""
        from . import combinatorics as _comb

        key = (observed_len, gap, n_max, bool(ends_at_boundary))
        cached = self._seg.get(key)
        if cached is not None:
            self._touch(self._seg, key)
            return cached
        slots, curve = _comb._segment_validity_curve_impl(
            observed_len, gap, n_max, ends_at_boundary
        )
        value = (slots, _readonly(curve))
        self._admit(self._seg, key, value)
        return value

    def warm_family(self, params: Any) -> None:
        """Precompute the per-family constants every shard shares.

        ``params`` is a :class:`~repro.dga.base.DgaParams`-shaped object
        (``n_registered`` / ``n_nxd`` / ``barrel_size``).  Called once per
        family at engine (and ingest-worker) construction, so the second
        same-family estimator build starts from a warm cache.
        """
        self.barrel_pmf(params.n_registered, params.n_nxd, params.barrel_size)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Atomically persist every entry to an ``.npz`` sidecar."""
        path = Path(path)
        arrays: dict[str, np.ndarray] = {}
        meta: dict[str, Any] = {"schema": KERNEL_CACHE_SCHEMA, "seg_slots": {}}
        for n_boxes, (n_max, m_max, table) in self._occ.items():
            arrays[f"occ|{n_boxes}|{n_max}|{m_max}"] = table
        for (max_last, m_max, gap), table in self._gap.items():
            arrays[f"gap|{max_last}|{m_max}|{gap}"] = table
        for (n_reg, n_nxd, barrel), pmf in self._pmf.items():
            arrays[f"pmf|{n_reg}|{n_nxd}|{barrel}"] = pmf
        for (length, gap, n_max, boundary), (slots, curve) in self._seg.items():
            name = f"seg|{length}|{gap}|{n_max}|{int(boundary)}"
            arrays[name] = curve
            meta["seg_slots"][name] = slots
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                # Uncompressed (ZIP_STORED) on purpose: it is what lets
                # `load` serve the arrays straight off one shared mmap.
                # A torn mapping is impossible: readers map the *old*
                # inode until os.replace swaps the name, and their mmap
                # keeps that inode alive until the last view drops.
                np.savez(fh, **arrays)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        self._dirty = False

    def load(self, path: str | Path) -> int:
        """Merge a :meth:`save`d sidecar; returns entries added.

        A sidecar :meth:`save`d by this module is served **zero-copy**:
        one shared read-only mmap of the file backs every warmed table
        (see :func:`_map_sidecar`), so N forked ingest workers or
        cluster partitions warming from the same path share one set of
        physical pages instead of N heap copies.  Mutation never writes
        through a mapping — the cache's only "mutation" is growing an
        occupancy table past its stored extents, which *replaces* the
        entry with a freshly computed private array (copy-on-write by
        promotion) and leaves the segment untouched for its other
        readers.  Legacy compressed (or otherwise unmappable) sidecars
        fall back to the copying loader.

        Tolerant by design: a missing, torn or foreign file warms
        nothing (the kernels are recomputed deterministically), it never
        fails the daemon.  Existing in-memory entries win — by
        construction both sides hold bit-identical values.
        """
        path = Path(path)
        if not path.exists():
            return 0
        data = _map_sidecar(path)
        if data is not None:
            try:
                return self._merge(data)
            except (ValueError, KeyError, json.JSONDecodeError):
                return 0
        try:
            with np.load(path) as npz:
                return self._merge({name: npz[name] for name in npz.files})
        except (OSError, ValueError, KeyError, zipfile.BadZipFile, json.JSONDecodeError):
            return 0

    def _merge(self, data: dict[str, np.ndarray]) -> int:
        """Fold decoded sidecar arrays into the cache; entries added."""
        if "__meta__" not in data:
            return 0
        meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
        if meta.get("schema") != KERNEL_CACHE_SCHEMA:
            return 0
        seg_slots = meta.get("seg_slots", {})
        added = 0
        for name in data:
            if name == "__meta__":
                continue
            kind, *parts = name.split("|")
            if kind == "occ":
                n_boxes, n_max, m_max = map(int, parts)
                stored = self._occ.get(n_boxes)
                if stored is not None and (
                    stored[0] >= n_max and stored[1] >= m_max
                ):
                    continue
                self._occ[n_boxes] = (n_max, m_max, _readonly(data[name]))
            elif kind == "gap":
                key = tuple(map(int, parts))
                if key in self._gap:
                    continue
                self._gap[key] = _readonly(data[name])
            elif kind == "pmf":
                key = tuple(map(int, parts))
                if key in self._pmf:
                    continue
                self._pmf[key] = _readonly(data[name])
            elif kind == "seg":
                length, gap, n_max, boundary = map(int, parts)
                key = (length, gap, n_max, bool(boundary))
                if key in self._seg or name not in seg_slots:
                    continue
                self._seg[key] = (int(seg_slots[name]), _readonly(data[name]))
            else:
                continue
            added += 1
        return added

    def spill(self, path: str | Path) -> None:
        """Merge whatever a concurrent writer already spilled, then save.

        Multiple ingest workers share one sidecar path; each spills at
        shutdown.  Load-then-save keeps the file a (best-effort) union —
        and because every entry is a deterministic function of its key,
        any interleaving still leaves only bit-exact values on disk.
        """
        if not self._dirty:
            return
        self.load(path)
        self.save(path)


_shared = KernelCache()


def shared_cache() -> KernelCache:
    """The process-local cache the combinatorics wrappers consult."""
    return _shared


def reset_shared_cache() -> KernelCache:
    """Swap in a fresh shared cache (tests, cold-path benchmarks)."""
    global _shared
    _shared = KernelCache()
    return _shared
