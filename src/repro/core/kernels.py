"""Shared estimator-kernel cache (§IV-D hot tables).

Every ``(family × server)`` shard of the sharded engine runs the same
Bernoulli machinery over the same family parameters, so the expensive
Theorem-1 ingredients — :func:`~repro.core.combinatorics.log_occupancy_table`,
:func:`~repro.core.combinatorics.log_gap_subset_table`,
:func:`~repro.core.combinatorics.barrel_consumption_pmf` and the composed
:func:`~repro.core.combinatorics.segment_validity_curve` — are recomputed
with identical arguments over and over.  :class:`KernelCache` memoises
them process-locally and can spill to / warm from an ``.npz`` sidecar
next to the daemon's checkpoint, so a restarted (or freshly forked
ingest-worker) process skips the warm-up.

Exactness is non-negotiable: the streamed series must stay byte-identical
to the uncached engine, so the cache only ever returns bit-exact values.

* The occupancy table's log recurrence computes entry ``(n, m)`` from
  entries with smaller indices only, independent of the table extents —
  so a larger cached table can be *sliced* to serve a smaller request
  bit-exactly.  Requests grow the stored table to the running maximum
  extent.
* The gap-subset table uses peak-rescaling (values depend on the extent
  through the renormalisation points), and the validity curve inherits
  that — both are cached under their **exact** argument tuple only.

All returned arrays are read-only views; callers that need to mutate
must copy.  The cache is process-local and not thread-safe — the
sharded service gives each worker process its own instance.
"""

from __future__ import annotations

import json
import os
import zipfile
from collections import OrderedDict
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["KERNEL_CACHE_SCHEMA", "KernelCache", "shared_cache", "reset_shared_cache"]

KERNEL_CACHE_SCHEMA = "botmeter-kernels-v1"

#: Per-kind LRU capacity; generous for any realistic family mix while
#: bounding memory in adversarial workloads.
_MAX_ENTRIES = 512


def _readonly(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


class KernelCache:
    """Memoised estimator kernels with optional ``.npz`` persistence.

    Four kinds of entries, keyed as in :mod:`repro.core.combinatorics`:

    * ``occ``  — ``log_occupancy_table(n_boxes, n_max, m_max)``, stored
      per ``n_boxes`` at the largest extents requested so far (slice-safe);
    * ``gap``  — ``log_gap_subset_table(max_last, m_max, gap)``, exact key;
    * ``pmf``  — ``barrel_consumption_pmf(θ∃, θ∅, θq)``, exact key;
    * ``seg``  — ``segment_validity_curve(len, θq, n_max, boundary)``,
      exact key, value ``(slots, curve)``.
    """

    def __init__(self, max_entries: int = _MAX_ENTRIES) -> None:
        self.max_entries = max(1, int(max_entries))
        # n_boxes -> (n_max, m_max, table)
        self._occ: OrderedDict[int, tuple[int, int, np.ndarray]] = OrderedDict()
        self._gap: OrderedDict[tuple[int, int, int], np.ndarray] = OrderedDict()
        self._pmf: OrderedDict[tuple[int, int, int], np.ndarray] = OrderedDict()
        self._seg: OrderedDict[tuple[int, int, int, bool], tuple[int, np.ndarray]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self._dirty = False

    # -- bookkeeping ---------------------------------------------------------

    def _touch(self, store: OrderedDict, key: Any) -> None:
        store.move_to_end(key)
        self.hits += 1

    def _admit(self, store: OrderedDict, key: Any, value: Any) -> None:
        store[key] = value
        store.move_to_end(key)
        while len(store) > self.max_entries:
            store.popitem(last=False)
        self.misses += 1
        self._dirty = True

    @property
    def dirty(self) -> bool:
        """Entries were added since the last :meth:`save`."""
        return self._dirty

    def __len__(self) -> int:
        return len(self._occ) + len(self._gap) + len(self._pmf) + len(self._seg)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        self._occ.clear()
        self._gap.clear()
        self._pmf.clear()
        self._seg.clear()
        self.hits = 0
        self.misses = 0
        self._dirty = False

    # -- kernels -------------------------------------------------------------

    def occupancy(self, n_boxes: int, n_max: int, m_max: int) -> np.ndarray:
        """``log_occupancy_table``, served from the per-``n_boxes`` superset.

        The recurrence is extent-independent, so slicing a larger stored
        table yields bit-exactly the array a direct call would build.
        """
        from . import combinatorics as _comb

        stored = self._occ.get(n_boxes)
        if stored is not None:
            stored_n, stored_m, table = stored
            if n_max <= stored_n and m_max <= stored_m:
                self._touch(self._occ, n_boxes)
                return table[: n_max + 1, : m_max + 1]
            n_max, m_max = max(n_max, stored_n), max(m_max, stored_m)
        table = _readonly(_comb._log_occupancy_table_impl(n_boxes, n_max, m_max))
        self._admit(self._occ, n_boxes, (n_max, m_max, table))
        return table

    def gap_subsets(self, max_last: int, m_max: int, gap: int) -> np.ndarray:
        """``log_gap_subset_table`` under its exact key (the peak-rescaled
        recurrence makes values extent-dependent, so no slicing)."""
        from . import combinatorics as _comb

        key = (max_last, m_max, gap)
        cached = self._gap.get(key)
        if cached is not None:
            self._touch(self._gap, key)
            return cached
        table = _readonly(_comb._log_gap_subset_table_impl(max_last, m_max, gap))
        self._admit(self._gap, key, table)
        return table

    def barrel_pmf(self, n_registered: int, n_nxd: int, barrel_size: int) -> np.ndarray:
        """``barrel_consumption_pmf`` under its exact key."""
        from . import combinatorics as _comb

        key = (n_registered, n_nxd, barrel_size)
        cached = self._pmf.get(key)
        if cached is not None:
            self._touch(self._pmf, key)
            return cached
        pmf = _readonly(_comb._barrel_consumption_pmf_impl(n_registered, n_nxd, barrel_size))
        self._admit(self._pmf, key, pmf)
        return pmf

    def segment_curve(
        self, observed_len: int, gap: int, n_max: int, ends_at_boundary: bool
    ) -> tuple[int, np.ndarray]:
        """``segment_validity_curve`` under its exact key."""
        from . import combinatorics as _comb

        key = (observed_len, gap, n_max, bool(ends_at_boundary))
        cached = self._seg.get(key)
        if cached is not None:
            self._touch(self._seg, key)
            return cached
        slots, curve = _comb._segment_validity_curve_impl(
            observed_len, gap, n_max, ends_at_boundary
        )
        value = (slots, _readonly(curve))
        self._admit(self._seg, key, value)
        return value

    def warm_family(self, params: Any) -> None:
        """Precompute the per-family constants every shard shares.

        ``params`` is a :class:`~repro.dga.base.DgaParams`-shaped object
        (``n_registered`` / ``n_nxd`` / ``barrel_size``).  Called once per
        family at engine (and ingest-worker) construction, so the second
        same-family estimator build starts from a warm cache.
        """
        self.barrel_pmf(params.n_registered, params.n_nxd, params.barrel_size)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Atomically persist every entry to an ``.npz`` sidecar."""
        path = Path(path)
        arrays: dict[str, np.ndarray] = {}
        meta: dict[str, Any] = {"schema": KERNEL_CACHE_SCHEMA, "seg_slots": {}}
        for n_boxes, (n_max, m_max, table) in self._occ.items():
            arrays[f"occ|{n_boxes}|{n_max}|{m_max}"] = table
        for (max_last, m_max, gap), table in self._gap.items():
            arrays[f"gap|{max_last}|{m_max}|{gap}"] = table
        for (n_reg, n_nxd, barrel), pmf in self._pmf.items():
            arrays[f"pmf|{n_reg}|{n_nxd}|{barrel}"] = pmf
        for (length, gap, n_max, boundary), (slots, curve) in self._seg.items():
            name = f"seg|{length}|{gap}|{n_max}|{int(boundary)}"
            arrays[name] = curve
            meta["seg_slots"][name] = slots
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **arrays)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        self._dirty = False

    def load(self, path: str | Path) -> int:
        """Merge a :meth:`save`d sidecar; returns entries added.

        Tolerant by design: a missing, torn or foreign file warms
        nothing (the kernels are recomputed deterministically), it never
        fails the daemon.  Existing in-memory entries win — by
        construction both sides hold bit-identical values.
        """
        path = Path(path)
        if not path.exists():
            return 0
        try:
            with np.load(path) as data:
                meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
                if meta.get("schema") != KERNEL_CACHE_SCHEMA:
                    return 0
                seg_slots = meta.get("seg_slots", {})
                added = 0
                for name in data.files:
                    if name == "__meta__":
                        continue
                    kind, *parts = name.split("|")
                    if kind == "occ":
                        n_boxes, n_max, m_max = map(int, parts)
                        stored = self._occ.get(n_boxes)
                        if stored is not None and (
                            stored[0] >= n_max and stored[1] >= m_max
                        ):
                            continue
                        self._occ[n_boxes] = (n_max, m_max, _readonly(data[name]))
                    elif kind == "gap":
                        key = tuple(map(int, parts))
                        if key in self._gap:
                            continue
                        self._gap[key] = _readonly(data[name])
                    elif kind == "pmf":
                        key = tuple(map(int, parts))
                        if key in self._pmf:
                            continue
                        self._pmf[key] = _readonly(data[name])
                    elif kind == "seg":
                        length, gap, n_max, boundary = map(int, parts)
                        key = (length, gap, n_max, bool(boundary))
                        if key in self._seg or name not in seg_slots:
                            continue
                        self._seg[key] = (int(seg_slots[name]), _readonly(data[name]))
                    else:
                        continue
                    added += 1
                return added
        except (OSError, ValueError, KeyError, zipfile.BadZipFile, json.JSONDecodeError):
            return 0

    def spill(self, path: str | Path) -> None:
        """Merge whatever a concurrent writer already spilled, then save.

        Multiple ingest workers share one sidecar path; each spills at
        shutdown.  Load-then-save keeps the file a (best-effort) union —
        and because every entry is a deterministic function of its key,
        any interleaving still leaves only bit-exact values on disk.
        """
        if not self._dirty:
            return
        self.load(path)
        self.save(path)


_shared = KernelCache()


def shared_cache() -> KernelCache:
    """The process-local cache the combinatorics wrappers consult."""
    return _shared


def reset_shared_cache() -> KernelCache:
    """Swap in a fresh shared cache (tests, cold-path benchmarks)."""
    global _shared
    _shared = KernelCache()
    return _shared
