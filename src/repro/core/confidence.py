"""Uncertainty quantification for population estimates.

The paper reports point estimates; operators prioritising remediation
also want to know how much to trust them.  This module adds two
principled interval constructions:

* :func:`poisson_interval` — for MP: conditional on ``n`` visible
  activations over an uncovered exposure ``E``, the activation rate has
  an exact Gamma(n, E) likelihood, so the population ``N = λ·W`` gets
  Gamma quantile bounds.
* :func:`coverage_profile_interval` — for MB's positionwise model: a
  profile-likelihood interval over the Bernoulli coverage likelihood
  (all ``N`` whose log-likelihood is within ``χ²₁(1−α)/2`` of the
  maximum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.stats import chi2, gamma

__all__ = [
    "ConfidenceInterval",
    "poisson_interval",
    "coverage_profile_interval",
    "widen_for_loss",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval around a point estimate."""

    low: float
    point: float
    high: float
    level: float

    def __post_init__(self) -> None:
        if not 0 < self.level < 1:
            raise ValueError(f"level must be in (0, 1), got {self.level}")
        if not self.low <= self.point <= self.high:
            raise ValueError(
                f"interval must bracket the point: "
                f"{self.low} <= {self.point} <= {self.high}"
            )

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.low <= value <= self.high


def poisson_interval(
    n_visible: int,
    exposure: float,
    window: float,
    level: float = 0.9,
) -> ConfidenceInterval:
    """Gamma interval for the MP population estimate.

    Args:
        n_visible: number of visible activations in the window.
        exposure: total uncovered exposure ``Σ Δi (+ tail)`` in seconds.
        window: observation-window length in seconds.
        level: two-sided coverage level.
    """
    if n_visible < 0:
        raise ValueError("n_visible must be >= 0")
    if exposure <= 0 or window <= 0:
        raise ValueError("exposure and window must be positive")
    if n_visible == 0:
        # One-sided: rate below the (level)-quantile of Exp(exposure).
        high = -math.log(1 - level) / exposure * window
        return ConfidenceInterval(0.0, 0.0, high, level)
    alpha = 1 - level
    # Jeffreys-style Gamma bounds on the rate λ given n events in E.
    low_rate = gamma.ppf(alpha / 2, n_visible, scale=1.0 / exposure)
    high_rate = gamma.ppf(1 - alpha / 2, n_visible + 1, scale=1.0 / exposure)
    point = n_visible / exposure * window
    return ConfidenceInterval(low_rate * window, point, high_rate * window, level)


def widen_for_loss(
    interval: ConfidenceInterval, loss_fraction: float
) -> ConfidenceInterval:
    """Widen an interval for degraded-channel observation loss.

    The service's per-epoch quality annotation reports an estimated loss
    fraction ``l`` (records dropped, quarantined or late relative to the
    records charted).  Under the random-thinning model — each lookup is
    independently lost with probability ``l`` — the effective number of
    observations behind the estimate shrinks by ``(1 - l)``, so both
    interval arms are stretched by ``1 / (1 - l)`` around the point
    estimate.  ``l`` is clamped to 0.95 so a catastrophic epoch yields a
    very wide interval rather than an infinite one; the lower arm is
    floored at zero (populations are non-negative).
    """
    if loss_fraction < 0:
        raise ValueError(f"loss_fraction must be >= 0, got {loss_fraction}")
    clamped = min(loss_fraction, 0.95)
    if clamped == 0.0:
        return interval
    scale = 1.0 / (1.0 - clamped)
    low = max(0.0, interval.point - (interval.point - interval.low) * scale)
    high = interval.point + (interval.high - interval.point) * scale
    return ConfidenceInterval(low, interval.point, high, interval.level)


def _coverage_log_likelihood(
    population: float,
    weights: np.ndarray,
    covered: np.ndarray,
    circle_size: int,
) -> float:
    with np.errstate(divide="ignore"):
        log_miss = np.log1p(-weights / circle_size)
    log_miss_n = population * log_miss
    succ = -np.expm1(log_miss_n)
    succ = np.clip(succ, 1e-300, 1.0)
    miss = np.clip(np.exp(log_miss_n), 1e-300, 1.0)
    return float(np.sum(np.where(covered, np.log(succ), np.log(miss))))


def coverage_profile_interval(
    weights: Sequence[int],
    covered: Sequence[bool],
    circle_size: int,
    point: float,
    level: float = 0.9,
) -> ConfidenceInterval:
    """Profile-likelihood interval for the MB positionwise model.

    Finds the ``N`` range where the Bernoulli coverage log-likelihood is
    within ``χ²₁(level)/2`` of its value at ``point`` (the MLE).
    """
    if point < 0:
        raise ValueError("point estimate must be >= 0")
    w = np.asarray(weights, dtype=float)
    x = np.asarray(covered, dtype=bool)
    if w.size != x.size:
        raise ValueError("weights and coverage must align")
    if w.size == 0 or point == 0:
        return ConfidenceInterval(0.0, point, max(point, 1.0), level)

    threshold = chi2.ppf(level, df=1) / 2.0
    peak = _coverage_log_likelihood(max(point, 1e-9), w, x, circle_size)

    def deficit(population: float) -> float:
        return peak - _coverage_log_likelihood(population, w, x, circle_size)

    low = _bisect_to_threshold(deficit, point, threshold, downward=True)
    high = _bisect_to_threshold(deficit, point, threshold, downward=False)
    return ConfidenceInterval(low, point, high, level)


def _bisect_to_threshold(deficit, point: float, threshold: float, downward: bool) -> float:
    """Find where the likelihood deficit crosses ``threshold`` on one side."""
    inner = point
    if downward:
        outer = point / 2.0
        while outer > 1e-9 and deficit(outer) < threshold:
            inner, outer = outer, outer / 2.0
        if outer <= 1e-9 and deficit(outer) < threshold:
            return 0.0
    else:
        outer = point * 2.0 + 1.0
        while outer < 1e9 and deficit(outer) < threshold:
            inner, outer = outer, outer * 2.0
        if outer >= 1e9:
            return outer
    for _ in range(80):
        mid = 0.5 * (inner + outer)
        if deficit(mid) < threshold:
            inner = mid
        else:
            outer = mid
    return 0.5 * (inner + outer)
