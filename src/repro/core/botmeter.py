"""The BotMeter pipeline (Figure 2).

Tapped at a border DNS server, BotMeter (1) matches the forwarded lookup
stream against the target DGA's confirmed domains (or patterns), (2)
partitions the matches by forwarding local server, and (3) runs the
selected analytical model per server, producing the **landscape**: one
population estimate per sub-network, ready for remediation
prioritisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..dga.base import Dga
from ..dns.message import ForwardedLookup
from ..timebase import SECONDS_PER_DAY, Timeline
from .estimator import EstimationContext, Estimator, PopulationEstimate
from .matcher import DgaDomainMatcher, group_by_server
from .taxonomy import applicable_estimators, recommended_estimator
from .bernoulli import BernoulliEstimator
from .ensemble import EnsembleEstimator
from .occupancy import OccupancyEstimator
from .poisson import PoissonEstimator
from .renewal import RenewalEstimator
from .timing import TimingEstimator

__all__ = ["BotMeter", "Landscape", "make_estimator"]

_ESTIMATOR_FACTORIES = {
    "timing": TimingEstimator,
    "poisson": PoissonEstimator,
    "bernoulli": BernoulliEstimator,
    "renewal": RenewalEstimator,
    "occupancy": OccupancyEstimator,
    "ensemble": EnsembleEstimator,
}


def make_estimator(name: str) -> Estimator:
    """Instantiate an estimator from the analytic model library by name."""
    try:
        return _ESTIMATOR_FACTORIES[name]()
    except KeyError:
        known = ", ".join(sorted(_ESTIMATOR_FACTORIES))
        raise KeyError(f"unknown estimator {name!r}; library has: {known}") from None


@dataclass
class Landscape:
    """The charted DGA-botnet landscape of a network.

    Per-local-server population estimates, ordered views for remediation
    prioritisation, and the matched-lookup counts behind them.
    """

    dga_name: str
    estimator_name: str
    per_server: dict[str, PopulationEstimate] = field(default_factory=dict)
    matched_counts: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Estimated bots across the whole network."""
        return sum(e.value for e in self.per_server.values())

    def ranked(self) -> list[tuple[str, float]]:
        """Servers by estimated infection, most infected first."""
        return sorted(
            ((s, e.value) for s, e in self.per_server.items()),
            key=lambda item: (-item[1], item[0]),
        )

    def summary(self) -> str:
        """Human-readable remediation-priority table."""
        lines = [
            f"DGA-botnet landscape — {self.dga_name} ({self.estimator_name} estimator)",
            f"{'server':<12} {'est. bots':>10} {'matched lookups':>16}",
        ]
        for server, value in self.ranked():
            lines.append(
                f"{server:<12} {value:>10.1f} {self.matched_counts.get(server, 0):>16d}"
            )
        lines.append(f"{'TOTAL':<12} {self.total:>10.1f}")
        return "\n".join(lines)


class BotMeter:
    """Charts DGA-bot populations from a vantage-point stream.

    Args:
        dga: the target DGA (provides daily pools and parameters — the
            "parameter specification" of Figure 2).
        estimator: an :class:`Estimator` instance, a library name
            (``"timing"``, ``"poisson"``, ``"bernoulli"``), or ``"auto"``
            to pick the paper's recommendation for the DGA's class.
        detection_windows: optional per-day-index detected NXD sets (the
            D3 detection window).  ``None`` assumes a perfect D3.
        negative_ttl: ``δl`` of the local negative caches.
        timestamp_granularity: collection timestamp coarseness.
        timeline: calendar anchoring of simulation time.
    """

    def __init__(
        self,
        dga: Dga,
        estimator: Estimator | str = "auto",
        detection_windows: dict[int, frozenset[str]] | None = None,
        negative_ttl: float = 7_200.0,
        timestamp_granularity: float = 0.1,
        timeline: Timeline | None = None,
    ) -> None:
        self._dga = dga
        self._timeline = timeline or Timeline()
        self._negative_ttl = negative_ttl
        self._granularity = timestamp_granularity
        self._detection_windows = detection_windows
        if isinstance(estimator, str):
            if estimator == "auto":
                self._estimator = recommended_estimator(dga)
            else:
                if estimator not in applicable_estimators(dga) and estimator in _ESTIMATOR_FACTORIES:
                    # Allowed but off-protocol; the paper only applies MP
                    # to AU and MB to AR.  Users may still force it.
                    pass
                self._estimator = make_estimator(estimator)
        else:
            self._estimator = estimator

    @property
    def estimator(self) -> Estimator:
        return self._estimator

    def _window_bounds(
        self,
        records: Sequence[ForwardedLookup],
        window_start: float | None,
        window_end: float | None,
    ) -> tuple[float, float]:
        if window_start is None:
            first = min((r.timestamp for r in records), default=0.0)
            window_start = (first // SECONDS_PER_DAY) * SECONDS_PER_DAY
        if window_end is None:
            last = max((r.timestamp for r in records), default=window_start)
            window_end = (last // SECONDS_PER_DAY + 1) * SECONDS_PER_DAY
        return window_start, window_end

    def _matcher_windows(self, start: float, end: float) -> dict[int, frozenset[str]]:
        first = int(start // SECONDS_PER_DAY)
        last = int((end - 1e-9) // SECONDS_PER_DAY)
        windows: dict[int, frozenset[str]] = {}
        for day in range(first, last + 1):
            if self._detection_windows is not None and day in self._detection_windows:
                windows[day] = self._detection_windows[day]
            else:
                windows[day] = frozenset(
                    self._dga.nxdomains(self._timeline.date_for_day(day))
                )
        return windows

    def chart(
        self,
        observable: Iterable[ForwardedLookup],
        window_start: float | None = None,
        window_end: float | None = None,
    ) -> Landscape:
        """Estimate per-local-server populations over the window.

        The window defaults to the full epochs spanned by the stream.
        """
        records = list(observable)
        start, end = self._window_bounds(records, window_start, window_end)
        if end <= start:
            raise ValueError("empty observation window")

        matcher = DgaDomainMatcher(self._matcher_windows(start, end))
        matches = [
            m for m in matcher.match(records) if start <= m.timestamp < end
        ]
        by_server = group_by_server(matches)

        context = EstimationContext(
            dga=self._dga,
            timeline=self._timeline,
            window_start=start,
            window_end=end,
            negative_ttl=self._negative_ttl,
            timestamp_granularity=self._granularity,
            detected_nxds_by_day=self._detection_windows,
        )
        landscape = Landscape(
            dga_name=self._dga.name, estimator_name=self._estimator.name
        )
        for server, server_matches in sorted(by_server.items()):
            landscape.per_server[server] = self._estimator.estimate(
                server_matches, context
            )
            landscape.matched_counts[server] = len(server_matches)
        return landscape
