"""Circle geometry of randomcut DGAs (§IV-D, Figure 5).

For AR families the daily pool forms a circle in generation order; the
``θ∃`` registered domains partition it into arcs and act as arc
boundaries.  Each bot picks a random start and queries clockwise until it
hits a boundary (a valid domain) or exhausts ``θq`` lookups.  The distinct
NXDs observed during an epoch therefore form contiguous *segments* inside
arcs:

* an **m-segment** ends in the middle of an arc — every bot covering its
  tail ran its full ``θq``-lookup barrel without reaching a boundary;
* a **b-segment** ends at an arc boundary — the bots at its tail stopped
  because they hit the valid domain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["SegmentKind", "Segment", "DgaCircle"]


class SegmentKind(enum.Enum):
    MIDDLE = "m-segment"
    BOUNDARY = "b-segment"


@dataclass(frozen=True)
class Segment:
    """A maximal run of observed NXDs inside one arc.

    Attributes:
        arc_index: which arc the segment lies in.
        start_offset: 1-based within-arc index of the segment's first NXD.
        length: number of consecutive observed NXDs.
        kind: whether the run ends at the arc boundary.
    """

    arc_index: int
    start_offset: int
    length: int
    kind: SegmentKind

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("segments have at least one NXD")
        if self.start_offset < 1:
            raise ValueError("within-arc offsets are 1-based")


class DgaCircle:
    """The daily pool laid out as a circle with valid-domain boundaries.

    Args:
        pool_order: the full pool in generation order (``θ∃+θ∅`` domains).
        registered: the valid (registered) domains among them.

    With no registered domain the circle is a single boundary-less arc;
    runs then wrap around the origin and every segment is an m-segment.
    """

    def __init__(self, pool_order: Sequence[str], registered: Iterable[str]) -> None:
        if not pool_order:
            raise ValueError("pool must be non-empty")
        self._pool = list(pool_order)
        self._registered = frozenset(registered)
        unknown = self._registered - set(self._pool)
        if unknown:
            raise ValueError(
                f"{len(unknown)} registered domains are not in the pool"
            )
        self._arcs: list[list[str]] = []
        self._arc_of: dict[str, tuple[int, int]] = {}  # domain -> (arc, offset)
        self._build_arcs()

    @property
    def size(self) -> int:
        """``θ∃ + θ∅``: the number of positions on the circle."""
        return len(self._pool)

    @property
    def n_boundaries(self) -> int:
        return len(self._registered & set(self._pool))

    @property
    def arc_lengths(self) -> list[int]:
        return [len(arc) for arc in self._arcs]

    def _build_arcs(self) -> None:
        n = len(self._pool)
        valid_positions = [
            i for i, domain in enumerate(self._pool) if domain in self._registered
        ]
        if not valid_positions:
            # Boundary-less circle: one arc starting (arbitrarily) at 0.
            arc = list(self._pool)
            self._arcs.append(arc)
            for offset, domain in enumerate(arc, start=1):
                self._arc_of[domain] = (0, offset)
            return
        for arc_index, start in enumerate(valid_positions):
            end = valid_positions[(arc_index + 1) % len(valid_positions)]
            arc: list[str] = []
            pos = (start + 1) % n
            while pos != end:
                arc.append(self._pool[pos])
                pos = (pos + 1) % n
            self._arcs.append(arc)
            for offset, domain in enumerate(arc, start=1):
                self._arc_of[domain] = (arc_index, offset)

    def iter_nxds(self):
        """Yield ``(domain, arc_index, 1-based offset)`` for every NXD."""
        for arc_index, arc in enumerate(self._arcs):
            for offset, domain in enumerate(arc, start=1):
                yield domain, arc_index, offset

    def arc_domains(self, arc_index: int) -> list[str]:
        """The NXDs of one arc, in clockwise order."""
        return list(self._arcs[arc_index])

    def locate(self, domain: str) -> tuple[int, int]:
        """``(arc_index, 1-based offset)`` of an NXD on the circle."""
        try:
            return self._arc_of[domain]
        except KeyError:
            raise KeyError(f"domain {domain!r} is not an NXD of this circle") from None

    def coverage_weight(self, arc_index: int, offset: int, barrel_size: int) -> int:
        """Number of start positions whose stretch covers this NXD.

        A bot covers the NXD at within-arc offset ``a`` iff it starts in
        the same arc at offset ``b ∈ [max(1, a−θq+1), a]`` — hence
        ``min(θq, a)`` possible starts.
        """
        if not 1 <= offset <= len(self._arcs[arc_index]):
            raise ValueError("offset outside arc")
        return min(barrel_size, offset)

    def segments(self, observed: Iterable[str]) -> list[Segment]:
        """Decompose the observed NXD set into maximal segments.

        Domains not on the circle (e.g. collision noise) are ignored.
        """
        per_arc: dict[int, set[int]] = {}
        for domain in observed:
            location = self._arc_of.get(domain)
            if location is None:
                continue
            arc_index, offset = location
            per_arc.setdefault(arc_index, set()).add(offset)

        segments: list[Segment] = []
        boundary_less = self.n_boundaries == 0
        for arc_index, offsets in sorted(per_arc.items()):
            arc_len = len(self._arcs[arc_index])
            runs = _runs(sorted(offsets))
            if boundary_less and len(runs) >= 2:
                first_start, first_len = runs[0]
                last_start, last_len = runs[-1]
                # Wrap-around: a run ending at the arc's last position
                # continues into a run starting at position 1.
                if first_start == 1 and last_start + last_len - 1 == arc_len:
                    runs = runs[1:-1] + [(last_start, last_len + first_len)]
            for start, length in runs:
                ends_at_boundary = (
                    not boundary_less and start + length - 1 == arc_len
                )
                segments.append(
                    Segment(
                        arc_index,
                        start,
                        length,
                        SegmentKind.BOUNDARY if ends_at_boundary else SegmentKind.MIDDLE,
                    )
                )
        return segments


def _runs(sorted_offsets: list[int]) -> list[tuple[int, int]]:
    """Maximal runs of consecutive integers as ``(start, length)``."""
    runs: list[tuple[int, int]] = []
    run_start: int | None = None
    previous: int | None = None
    for offset in sorted_offsets:
        if run_start is None:
            run_start = previous = offset
            continue
        if offset == previous + 1:
            previous = offset
            continue
        runs.append((run_start, previous - run_start + 1))
        run_start = previous = offset
    if run_start is not None:
        runs.append((run_start, previous - run_start + 1))
    return runs
