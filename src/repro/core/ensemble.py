"""Ensemble estimation.

Different analytical models fail in different regimes — MT under heavy
caching, MB at coverage saturation, MP under bursty activation rates —
and an operator rarely knows the regime in advance.
:class:`EnsembleEstimator` runs several members on the same matched
stream and combines their per-epoch outputs, trading a little best-case
accuracy for a much flatter worst case.

Combination rules:

* ``"median"`` (default) — robust to one wildly-off member;
* ``"mean"`` — lowest variance when all members are roughly unbiased;
* ``"min"`` — a conservative lower bound for remediation budgeting.
"""

from __future__ import annotations

import statistics
from typing import Sequence

from ..dga.base import Dga
from .bernoulli import BernoulliEstimator
from .estimator import (
    EstimationContext,
    Estimator,
    MatchedLookup,
    PopulationEstimate,
    average_per_epoch,
)
from .poisson import PoissonEstimator
from .renewal import RenewalEstimator
from .taxonomy import ModelClass, classify
from .timing import TimingEstimator

__all__ = ["EnsembleEstimator", "default_members"]

_COMBINERS = {
    "median": statistics.median,
    "mean": lambda values: sum(values) / len(values),
    "min": min,
}


def default_members(dga: Dga) -> list[Estimator]:
    """The sensible member set for a DGA's taxonomy class.

    MR applies everywhere; MT everywhere; MP joins for AU and MB for AR.
    """
    members: list[Estimator] = [RenewalEstimator(), TimingEstimator()]
    model = classify(dga)
    if model is ModelClass.AU:
        members.append(PoissonEstimator())
    elif model is ModelClass.AR:
        members.append(BernoulliEstimator())
    return members


class EnsembleEstimator:
    """Combines several estimators' per-epoch estimates.

    Args:
        members: estimator instances; ``None`` defers to
            :func:`default_members` at estimation time (the context
            carries the DGA).
        combine: ``"median"``, ``"mean"`` or ``"min"``.
    """

    name = "ensemble"

    def __init__(
        self,
        members: Sequence[Estimator] | None = None,
        combine: str = "median",
    ) -> None:
        if combine not in _COMBINERS:
            known = ", ".join(sorted(_COMBINERS))
            raise ValueError(f"unknown combine rule {combine!r}; have: {known}")
        if members is not None and not members:
            raise ValueError("member list must be non-empty when given")
        self._members = list(members) if members is not None else None
        self._combine = combine

    def estimate(
        self, lookups: Sequence[MatchedLookup], context: EstimationContext
    ) -> PopulationEstimate:
        """Run every member and combine their per-epoch estimates."""
        members = (
            self._members
            if self._members is not None
            else default_members(context.dga)
        )
        combiner = _COMBINERS[self._combine]
        member_results = {m.name: m.estimate(lookups, context) for m in members}

        per_epoch: dict[int, float] = {}
        for day, _start, _end in context.epoch_bounds():
            votes = [
                r.per_epoch[day]
                for r in member_results.values()
                if day in r.per_epoch
            ]
            per_epoch[day] = combiner(votes) if votes else 0.0
        return PopulationEstimate(
            value=average_per_epoch(per_epoch),
            estimator=self.name,
            per_epoch=per_epoch,
            details={
                "combine": self._combine,
                "members": {
                    name: result.value for name, result in member_results.items()
                },
            },
        )
