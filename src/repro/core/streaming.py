"""Online landscape charting.

The batch :class:`~repro.core.botmeter.BotMeter` wants the whole
observation window up front; a deployed tap sees an endless stream.
:class:`StreamingBotMeter` consumes forwarded lookups one at a time (in
roughly chronological order), matches them incrementally against the
daily detection windows, and emits one :class:`Landscape` per completed
epoch — either returned from :meth:`ingest` or delivered to an
``on_epoch`` callback.

Epoch closure is watermark-based: an epoch is finalised once a record
arrives ``grace`` seconds past its end, which tolerates the bounded
reordering and midnight-straddling activations a real collector
produces.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..dga.base import Dga
from ..dns.message import ForwardedLookup
from ..timebase import SECONDS_PER_DAY, Timeline
from .botmeter import Landscape, make_estimator
from .estimator import EstimationContext, Estimator, MatchedLookup, PopulationEstimate
from .matcher import group_by_server
from .taxonomy import recommended_estimator

__all__ = ["StreamingBotMeter"]


class StreamingBotMeter:
    """Incremental, epoch-at-a-time BotMeter.

    Args:
        dga: the target DGA.
        estimator: instance, library name, or ``"auto"``.
        detection_windows: optional per-day detected NXD sets.
        negative_ttl / timestamp_granularity / timeline: as in
            :class:`~repro.core.botmeter.BotMeter`.
        grace: seconds past an epoch's end before it is finalised.
        on_epoch: optional callback ``(day_index, Landscape) -> None``.
    """

    def __init__(
        self,
        dga: Dga,
        estimator: Estimator | str = "auto",
        detection_windows: dict[int, frozenset[str]] | None = None,
        negative_ttl: float = 7_200.0,
        timestamp_granularity: float = 0.1,
        timeline: Timeline | None = None,
        grace: float = 900.0,
        on_epoch: Callable[[int, Landscape], None] | None = None,
    ) -> None:
        if grace < 0:
            raise ValueError("grace must be >= 0")
        self._dga = dga
        self._timeline = timeline or Timeline()
        self._negative_ttl = negative_ttl
        self._granularity = timestamp_granularity
        self._detection_windows = detection_windows
        self._grace = grace
        self._on_epoch = on_epoch
        if isinstance(estimator, str):
            self._estimator = (
                recommended_estimator(dga)
                if estimator == "auto"
                else make_estimator(estimator)
            )
        else:
            self._estimator = estimator

        self._pending: dict[int, list[MatchedLookup]] = {}
        self._window_cache: dict[int, frozenset[str]] = {}
        self._watermark = float("-inf")
        self._next_epoch_to_close = 0
        self._ingested = 0
        self._matched = 0
        self._estimate_failures = 0
        self.landscapes: list[tuple[int, Landscape]] = []

    # -- matching ----------------------------------------------------------

    def _window_for(self, day: int) -> frozenset[str]:
        if day < 0:
            return frozenset()
        cached = self._window_cache.get(day)
        if cached is not None:
            return cached
        if self._detection_windows is not None and day in self._detection_windows:
            window = self._detection_windows[day]
        else:
            window = frozenset(
                self._dga.nxdomains(self._timeline.date_for_day(day))
            )
        if len(self._window_cache) > 8:
            for stale in [d for d in self._window_cache if d < day - 2]:
                del self._window_cache[stale]
        self._window_cache[day] = window
        return window

    def _match(self, record: ForwardedLookup) -> MatchedLookup | None:
        day = int(record.timestamp // SECONDS_PER_DAY)
        if record.domain in self._window_for(day):
            matched_day = day
        elif record.domain in self._window_for(day - 1):
            matched_day = day - 1
        else:
            return None
        return MatchedLookup(record.timestamp, record.server, record.domain, matched_day)

    # -- epoch lifecycle ----------------------------------------------------

    def _close_epoch(self, day: int) -> Landscape:
        matches = self._pending.pop(day, [])
        context = EstimationContext(
            dga=self._dga,
            timeline=self._timeline,
            window_start=day * SECONDS_PER_DAY,
            window_end=(day + 1) * SECONDS_PER_DAY,
            negative_ttl=self._negative_ttl,
            timestamp_granularity=self._granularity,
            detected_nxds_by_day=self._detection_windows,
        )
        landscape = Landscape(
            dga_name=self._dga.name, estimator_name=self._estimator.name
        )
        for server, server_matches in sorted(group_by_server(matches).items()):
            ordered = sorted(server_matches, key=lambda m: m.timestamp)
            try:
                estimate = self._estimator.estimate(ordered, context)
            except Exception:
                # Degenerate epochs (all-duplicate timestamps, skewed
                # out-of-window residue...) must degrade, not crash: fall
                # back to the raw matched count as a floor estimate.
                self._estimate_failures += 1
                estimate = PopulationEstimate(
                    float(len(ordered)), estimator=self._estimator.name
                )
            landscape.per_server[server] = estimate
            landscape.matched_counts[server] = len(ordered)
        self.landscapes.append((day, landscape))
        if self._on_epoch is not None:
            self._on_epoch(day, landscape)
        return landscape

    def _closable_epochs(self) -> list[int]:
        ready = []
        day = self._next_epoch_to_close
        while (day + 1) * SECONDS_PER_DAY + self._grace <= self._watermark:
            ready.append(day)
            day += 1
        return ready

    # -- public API ----------------------------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        """Counters: records ingested/matched, estimator fallbacks."""
        return {
            "ingested": self._ingested,
            "matched": self._matched,
            "estimate_failures": self._estimate_failures,
        }

    @property
    def watermark(self) -> float:
        """Highest timestamp seen (``-inf`` before the first record)."""
        return self._watermark

    @property
    def next_epoch_to_close(self) -> int:
        """Day index of the oldest epoch still open."""
        return self._next_epoch_to_close

    # -- checkpointing -------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-serialisable snapshot of the mutable ingest state.

        Captures everything :meth:`import_state` needs to make a fresh
        instance (same DGA / estimator / windows configuration) continue
        the stream exactly where this one stood: watermark, epoch
        cursor, counters, and the pending matches of open epochs.
        Already-closed landscapes are *not* included — the caller owns
        emitted output.
        """
        return {
            "watermark": None if self._watermark == float("-inf") else self._watermark,
            "next_epoch_to_close": self._next_epoch_to_close,
            "ingested": self._ingested,
            "matched": self._matched,
            "estimate_failures": self._estimate_failures,
            "pending": {
                str(day): [[m.timestamp, m.server, m.domain, m.day_index] for m in matches]
                for day, matches in sorted(self._pending.items())
            },
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        watermark = state["watermark"]
        self._watermark = float("-inf") if watermark is None else float(watermark)
        self._next_epoch_to_close = int(state["next_epoch_to_close"])
        self._ingested = int(state["ingested"])
        self._matched = int(state["matched"])
        self._estimate_failures = int(state.get("estimate_failures", 0))
        self._pending = {
            int(day): [
                MatchedLookup(float(t), server, domain, int(match_day))
                for t, server, domain, match_day in matches
            ]
            for day, matches in state["pending"].items()
        }

    def skip_to_epoch(self, day: int) -> None:
        """Start the epoch cursor at ``day`` (a shard born mid-stream in
        a sharded service must not re-close epochs the service already
        emitted).  Only legal before any record was ingested."""
        if self._ingested or self._pending:
            raise RuntimeError("skip_to_epoch is only legal on a fresh shard")
        self._next_epoch_to_close = max(self._next_epoch_to_close, int(day))

    def ingest(self, record: ForwardedLookup) -> list[Landscape]:
        """Consume one record; return the landscapes of any epochs this
        record's watermark just closed (usually empty)."""
        self._ingested += 1
        match = self._match(record)
        if match is not None:
            self._matched += 1
            if match.day_index >= self._next_epoch_to_close:
                self._pending.setdefault(match.day_index, []).append(match)
        return self.advance_watermark(record.timestamp)

    def advance_watermark(self, timestamp: float) -> list[Landscape]:
        """Advance the watermark without a record (e.g. driven by the
        global clock of a sharded service) and close any epoch the new
        watermark finalises.  Never moves the watermark backwards."""
        self._watermark = max(self._watermark, timestamp)
        closed = []
        for day in self._closable_epochs():
            closed.append(self._close_epoch(day))
            self._next_epoch_to_close = day + 1
        return closed

    def ingest_many(self, records: Iterable[ForwardedLookup]) -> list[Landscape]:
        """Consume a batch; returns every landscape closed along the way."""
        closed: list[Landscape] = []
        for record in records:
            closed.extend(self.ingest(record))
        return closed

    def finalize(self) -> list[Landscape]:
        """Close every epoch that still has pending matches (stream end)."""
        closed = []
        for day in sorted(self._pending):
            if day >= self._next_epoch_to_close:
                closed.append(self._close_epoch(day))
                self._next_epoch_to_close = day + 1
        return closed
