"""Bernoulli estimator MB (§IV-D).

MB targets randomcut DGAs (AR).  Its input is purely *semantic*: the set
of distinct DGA-NXDs observed during an epoch — a statistic that negative
caching cannot distort (the first lookup of every domain is always
forwarded) and that carries no timing information at all.  That is why
the paper finds MB immune to cache TTLs, timestamp granularity, and
activation-rate dynamics.

Model (Figure 5): the daily pool is a circle partitioned into arcs by the
``θ∃`` registered domains.  A bot starts at a uniformly random position
and covers a clockwise stretch of NXDs (ending at an arc boundary or
after ``θq`` lookups), so the NXD at within-arc offset ``a`` is covered
by any of ``w(a) = min(θq, a)`` start positions.  With ``N`` active bots,
each position's observation is a Bernoulli trial with success probability

    ``s_a(N) = 1 − (1 − w(a)/C)^N``,      C = θ∃ + θ∅.

The estimator inverts the observed coverage pattern back to ``N`` either
by maximising the Bernoulli (pseudo-)likelihood over positions
(``method="mle"``, the default) or by matching the expected number of
covered positions to the observed count (``method="moments"``).

The paper's Theorem-1 segment machinery — segment decomposition,
the barrel-consumption distribution (Eqn 2), and the endpoint/gap
occupancy combinatorics — lives in :mod:`repro.core.segments` and
:mod:`repro.core.combinatorics` and backs the per-segment diagnostics
this estimator reports; the closed-form expectation itself is
re-derived here because the paper's technical report is no longer
retrievable (see DESIGN.md §2).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy.optimize import minimize_scalar
from scipy.special import gammaln, logsumexp

from .combinatorics import segment_validity_curve
from .estimator import (
    EstimationContext,
    MatchedLookup,
    PopulationEstimate,
    average_per_epoch,
)
from .segments import DgaCircle, Segment, SegmentKind

__all__ = [
    "BernoulliEstimator",
    "solve_coverage_population",
    "solve_pattern_population",
]

_N_CAP = 1e8


def _coverage_weights(circle: DgaCircle, barrel_size: int) -> dict[str, int]:
    """``w(a) = min(θq, a)`` for every NXD on the circle, by domain."""
    return {
        domain: min(barrel_size, offset)
        for domain, _arc, offset in circle.iter_nxds()
    }


def _compress(
    weights: Sequence[int], covered: Sequence[bool]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group exchangeable positions: unique weight → (total, covered)."""
    totals: dict[int, int] = {}
    hits: dict[int, int] = {}
    for w, x in zip(weights, covered):
        totals[w] = totals.get(w, 0) + 1
        if x:
            hits[w] = hits.get(w, 0) + 1
    ws = np.array(sorted(totals), dtype=float)
    tot = np.array([totals[int(w)] for w in ws], dtype=float)
    hit = np.array([hits.get(int(w), 0) for w in ws], dtype=float)
    return ws, tot, hit


def solve_coverage_population(
    weights: Sequence[int],
    covered: Sequence[bool],
    circle_size: int,
    method: str = "mle",
) -> float:
    """Invert a Bernoulli coverage pattern to a population estimate.

    Args:
        weights: per-position coverage weights ``w(a)``.
        covered: per-position observation indicators.
        circle_size: ``C = θ∃ + θ∅``.
        method: ``"mle"`` (pseudo-likelihood maximum) or ``"moments"``
            (expected-coverage matching).

    Returns the continuous estimate ``N̂ >= 0``.
    """
    if len(weights) != len(covered):
        raise ValueError("weights and coverage indicators must align")
    if circle_size < 1:
        raise ValueError("circle size must be positive")
    if method not in ("mle", "moments"):
        raise ValueError(f"unknown method {method!r}")
    if not weights:
        return 0.0

    ws, tot, hit = _compress(weights, covered)
    n_covered = float(hit.sum())
    if n_covered == 0:
        return 0.0
    # log(1 - w/C) per weight class, strictly negative (-inf where w == C).
    with np.errstate(divide="ignore"):
        log_miss = np.log1p(-ws / circle_size)
    if np.any(~np.isfinite(log_miss)):
        # w == C: a single bot always covers such positions; they carry
        # no population information beyond "N >= 1".  Drop them.
        finite = np.isfinite(log_miss)
        ws, tot, hit, log_miss = ws[finite], tot[finite], hit[finite], log_miss[finite]
        if ws.size == 0:
            return 1.0
        n_covered = float(hit.sum())
        if n_covered == 0:
            return 1.0
    if np.all(hit == tot):
        # Every observable position covered: any sufficiently large N
        # fits; report the smallest N making full coverage the median
        # outcome (documented saturation behaviour).
        return _saturation_estimate(log_miss, tot)

    if method == "moments":
        target = n_covered

        def excess(n: float) -> float:
            # Decreasing in n: positive while expected coverage is still
            # below the observed count.
            return target - float(np.sum(tot * (1.0 - np.exp(n * log_miss))))

    else:

        def excess(n: float) -> float:
            # d/dN of the Bernoulli pseudo-log-likelihood.
            miss_pow = np.exp(n * log_miss)
            succ = 1.0 - miss_pow
            # Guard positions with succ == 0 at n == 0 handled by bracket.
            term_hit = hit * (-log_miss) * miss_pow / np.maximum(succ, 1e-300)
            term_miss = (tot - hit) * log_miss
            return float(np.sum(term_hit + term_miss))

    return _bracketed_root(excess)


def _saturation_estimate(log_miss: np.ndarray, tot: np.ndarray) -> float:
    """Smallest N with P(all positions covered) >= 1/2."""

    def log_p_all(n: float) -> float:
        return float(np.sum(tot * np.log1p(-np.exp(n * log_miss))))

    lo, hi = 1.0, 2.0
    while log_p_all(hi) < math.log(0.5) and hi < _N_CAP:
        hi *= 2.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if log_p_all(mid) < math.log(0.5):
            lo = mid
        else:
            hi = mid
    return hi


def _bracketed_root(excess) -> float:
    """Root of a decreasing-excess function on (0, ∞) by bisection."""
    lo = 0.0
    hi = 1.0
    while excess(hi) > 0:
        lo = hi
        hi *= 2.0
        if hi > _N_CAP:
            return _N_CAP
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if excess(mid) > 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _segment_log_mixture(mu: float, log_curve: np.ndarray) -> float:
    """``log Σ_n Poisson(n; μ)·V(n)`` for one segment."""
    if mu <= 0:
        return float(log_curve[0])  # only n = 0 has mass; V(0) = 0 → -inf
    n = np.arange(log_curve.size, dtype=float)
    log_pois = n * math.log(mu) - mu - gammaln(n + 1.0)
    return float(logsumexp(log_pois + log_curve))


def solve_pattern_population(
    segments: Sequence[Segment],
    total_nxds: int,
    circle_size: int,
    barrel_size: int,
    rough_estimate: float,
) -> float:
    """Maximum-likelihood population from the full coverage *pattern*.

    Poissonising the ``N`` uniform bot starts (independent Poisson counts
    per circle position with rate ``N/C``), the likelihood of an observed
    coverage pattern factorises:

    * each segment contributes ``Σ_n Pois(n; N·slots/C) · V(n)`` — the
      chance the Poisson number of starts that landed in its allowed slot
      range reproduces it exactly (``V`` from
      :func:`repro.core.combinatorics.segment_validity_curve`, i.e. the
      paper's Theorem-1 endpoint/gap occupancy machinery);
    * every *forbidden* position (uncovered NXDs and m-segment tails,
      where any start would have altered the pattern) contributes
      ``exp(−N/C)``.

    The 1-D MLE over ``N`` uses all the information in the distinct-NXD
    set — segment lengths, segment kinds, and uncovered gaps — which is
    what lets MB stay accurate where pure coverage counting saturates.

    Args:
        segments: the observed segment decomposition.
        total_nxds: number of NXD positions on the circle (``θ∅``).
        circle_size: ``C = θ∃ + θ∅``.
        barrel_size: ``θq``.
        rough_estimate: a cheap initial estimate (e.g. the positionwise
            MLE) used to size the search bracket and Poisson tails.

    Returns the continuous MLE ``N̂``.
    """
    if not segments:
        return 0.0
    n_hi = max(4.0 * rough_estimate + 20.0, 10.0 * len(segments) + 20.0)

    prepared: list[tuple[int, np.ndarray]] = []
    allowed = 0
    for segment in segments:
        boundary = segment.kind is SegmentKind.BOUNDARY
        mu_hi = n_hi * max(segment.length, 1) / circle_size
        min_needed = max(1, math.ceil(segment.length / barrel_size))
        n_max = int(mu_hi + 10.0 * math.sqrt(mu_hi + 1.0) + 3 * min_needed + 40)
        slots, curve = segment_validity_curve(
            segment.length, barrel_size, n_max, boundary
        )
        with np.errstate(divide="ignore"):
            log_curve = np.log(curve)
        prepared.append((slots, log_curve))
        allowed += slots
    forbidden = max(0, total_nxds - allowed)

    def neg_log_likelihood(population: float) -> float:
        total = -population * forbidden / circle_size
        for slots, log_curve in prepared:
            total += _segment_log_mixture(
                population * slots / circle_size, log_curve
            )
        return -total

    result = minimize_scalar(
        neg_log_likelihood, bounds=(1e-9, n_hi), method="bounded",
        options={"xatol": 1e-3},
    )
    return float(result.x)


class BernoulliEstimator:
    """Per-epoch coverage inversion, averaged over the window.

    Args:
        method: ``"pattern"`` (default — full segment-pattern likelihood,
            the Theorem-1 machinery), ``"mle"`` (positionwise Bernoulli
            pseudo-likelihood) or ``"moments"`` (expected-coverage
            matching).  See the module docstring.
        compensate_detection_window: when ``True``, the positionwise
            likelihood is restricted to the NXD positions the D3
            algorithm actually knows, making the estimator robust to
            detection misses — an extension over the paper, whose MB
            treats the detection window as complete and therefore
            under-estimates when domains are missed (Figure 6e).
            Forces ``method="mle"`` internally, because detection holes
            invalidate the exact segment-pattern model.
    """

    name = "bernoulli"

    def __init__(
        self, method: str = "pattern", compensate_detection_window: bool = False
    ) -> None:
        if method not in ("pattern", "mle", "moments"):
            raise ValueError(f"unknown method {method!r}")
        self._method = "mle" if compensate_detection_window else method
        self._compensate = compensate_detection_window

    def estimate(
        self, lookups: Sequence[MatchedLookup], context: EstimationContext
    ) -> PopulationEstimate:
        """Invert each epoch's distinct-NXD coverage to a population."""
        params = context.dga.params
        per_epoch: dict[int, float] = {}
        details: dict[str, object] = {
            "method": self._method,
            "compensated": self._compensate,
            "segments_per_epoch": {},
        }
        for day, start, end in context.epoch_bounds():
            date = context.timeline.date_for_day(day)
            pool = context.dga.pool(date)
            registered = context.dga.registered(date)
            circle = DgaCircle(pool, registered)
            weight_by_domain = _coverage_weights(circle, params.barrel_size)

            observed = {
                l.domain
                for l in lookups
                if start <= l.timestamp < end and l.domain in weight_by_domain
            }
            if self._compensate:
                position_domains = [
                    d for d in weight_by_domain if d in context.detected_nxds(day)
                ]
            else:
                position_domains = list(weight_by_domain)
            weights = [weight_by_domain[d] for d in position_domains]
            covered = [d in observed for d in position_domains]
            segments = circle.segments(observed)
            if self._method == "pattern":
                rough = solve_coverage_population(
                    weights, covered, circle.size, "mle"
                )
                # An m-segment shorter than θq cannot arise from complete
                # observation (every covering bot consumed a full barrel):
                # it is the signature of missing records or a partial D3
                # window, under which the exact pattern model is invalid.
                fragmented = any(
                    s.kind is SegmentKind.MIDDLE and s.length < params.barrel_size
                    for s in segments
                )
                if not observed:
                    per_epoch[day] = 0.0
                elif fragmented or len(observed) == len(weight_by_domain):
                    # Degrade to the positionwise estimate: fully
                    # saturated circles carry no pattern information, and
                    # fragmented patterns would mislead it.
                    per_epoch[day] = rough
                else:
                    per_epoch[day] = solve_pattern_population(
                        segments,
                        total_nxds=len(weight_by_domain),
                        circle_size=circle.size,
                        barrel_size=params.barrel_size,
                        rough_estimate=rough,
                    )
            else:
                per_epoch[day] = solve_coverage_population(
                    weights, covered, circle.size, self._method
                )
            details["segments_per_epoch"][day] = [  # type: ignore[index]
                (s.kind.value, s.length) for s in segments
            ]
        return PopulationEstimate(
            value=average_per_epoch(per_epoch),
            estimator=self.name,
            per_epoch=per_epoch,
            details=details,
        )
