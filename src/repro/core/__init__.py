"""BotMeter core: matcher, analytic model library (MT, MP, MB), taxonomy,
and the landscape-charting pipeline."""

from .bernoulli import BernoulliEstimator, solve_coverage_population
from .botmeter import BotMeter, Landscape, make_estimator
from .combinatorics import (
    barrel_consumption_pmf,
    coverage_validity_curve,
    expected_barrel_consumption,
    expected_bots_to_cover,
    gap_constrained_subset_count,
    log_occupancy_table,
)
from .confidence import (
    ConfidenceInterval,
    coverage_profile_interval,
    poisson_interval,
)
from .ensemble import EnsembleEstimator, default_members
from .estimator import (
    EstimationContext,
    Estimator,
    MatchedLookup,
    PopulationEstimate,
    average_per_epoch,
)
from .matcher import DgaDomainMatcher, PatternMatcher, group_by_server
from .occupancy import OccupancyEstimator, invert_distinct_count
from .poisson import PoissonEstimator, visible_activation_times
from .renewal import (
    RenewalEstimator,
    coverage_probabilities,
    expected_forwarded_lookups,
)
from .segments import DgaCircle, Segment, SegmentKind
from .streaming import StreamingBotMeter
from .taxonomy import (
    TAXONOMY_GRID,
    ModelClass,
    applicable_estimators,
    classify,
    recommended_estimator,
    render_taxonomy,
    taxonomy_cell,
)
from .timing import TimingEstimator

__all__ = [
    "ConfidenceInterval",
    "coverage_profile_interval",
    "poisson_interval",
    "BernoulliEstimator",
    "solve_coverage_population",
    "EnsembleEstimator",
    "default_members",
    "BotMeter",
    "Landscape",
    "make_estimator",
    "barrel_consumption_pmf",
    "coverage_validity_curve",
    "expected_barrel_consumption",
    "expected_bots_to_cover",
    "gap_constrained_subset_count",
    "log_occupancy_table",
    "EstimationContext",
    "Estimator",
    "MatchedLookup",
    "PopulationEstimate",
    "average_per_epoch",
    "DgaDomainMatcher",
    "PatternMatcher",
    "group_by_server",
    "OccupancyEstimator",
    "invert_distinct_count",
    "PoissonEstimator",
    "visible_activation_times",
    "RenewalEstimator",
    "coverage_probabilities",
    "expected_forwarded_lookups",
    "DgaCircle",
    "Segment",
    "SegmentKind",
    "StreamingBotMeter",
    "TAXONOMY_GRID",
    "ModelClass",
    "applicable_estimators",
    "classify",
    "recommended_estimator",
    "render_taxonomy",
    "taxonomy_cell",
    "TimingEstimator",
]
