"""Occupancy estimator MO for sampling- and permutation-barrel DGAs.

An extension of the library: the paper applies only MT to AS
(Conficker-style) and AP (Necurs-style) families, but both classes admit
a *semantic* estimator in the spirit of MB — invert the number of
distinct NXDs observed during an epoch:

* **AS (sampling)** — a bot draws domains uniformly without replacement
  and stops on the first valid hit, so it queries ``q`` NXDs with the
  Eqn-2 distribution; given ``q``, each particular NXD is in the drawn
  set with probability ``q/θ∅``.  Marginally a bot covers a given NXD
  with probability ``E[q]/θ∅``, and coverages of different bots are
  independent, giving

      ``E[distinct] = θ∅·(1 − (1 − E[q]/θ∅)^N)``  (exact in expectation
      up to the negligible within-bot dependence across positions).

* **AP (permutation)** — identical formula: a random permutation prefix
  up to the first valid hit is exchangeable across positions, so the
  per-position coverage probability is again ``E[q]/θ∅``.

Like MB, the statistic is immune to caching (first lookups always
forwarded) and to timestamp granularity; like MB it degrades when the D3
window misses domains, and the same compensation trick (restrict to the
known window) applies.
"""

from __future__ import annotations

import math
from typing import Sequence

from .combinatorics import expected_barrel_consumption
from .estimator import (
    EstimationContext,
    MatchedLookup,
    PopulationEstimate,
    average_per_epoch,
)

__all__ = ["OccupancyEstimator", "invert_distinct_count"]

_N_CAP = 1e8


def invert_distinct_count(
    n_distinct: int, n_positions: int, per_bot_coverage: float
) -> float:
    """Solve ``n_distinct = P·(1 − (1 − c)^N)`` for ``N``.

    Args:
        n_distinct: observed distinct NXDs.
        n_positions: ``P`` — observable NXD positions.
        per_bot_coverage: ``c`` — probability a single bot covers a given
            position.

    Returns the continuous estimate, capped when the observation
    saturates (``n_distinct == n_positions`` is consistent with any large
    ``N``; the cap marks the point estimate as a lower bound).
    """
    if n_positions < 1:
        raise ValueError("need at least one observable position")
    if not 0 < per_bot_coverage < 1:
        raise ValueError("per-bot coverage must be in (0, 1)")
    if not 0 <= n_distinct <= n_positions:
        raise ValueError("distinct count out of range")
    if n_distinct == 0:
        return 0.0
    if n_distinct == n_positions:
        return _N_CAP
    fraction = n_distinct / n_positions
    return math.log1p(-fraction) / math.log1p(-per_bot_coverage)


class OccupancyEstimator:
    """Distinct-NXD inversion for AS/AP families.

    Args:
        compensate_detection_window: restrict the position universe to
            the D3-known NXDs (robust to misses); off by default to
            match the behaviour of the paper's semantic estimator under
            Figure 6(e).
    """

    name = "occupancy"

    def __init__(self, compensate_detection_window: bool = False) -> None:
        self._compensate = compensate_detection_window

    def estimate(
        self, lookups: Sequence[MatchedLookup], context: EstimationContext
    ) -> PopulationEstimate:
        """Invert each epoch's distinct-NXD count to a population."""
        params = context.dga.params
        expected_q = expected_barrel_consumption(
            params.n_registered, params.n_nxd, params.barrel_size
        )
        per_epoch: dict[int, float] = {}
        details: dict[str, object] = {
            "expected_barrel_consumption": expected_q,
            "compensated": self._compensate,
        }
        for day, start, end in context.epoch_bounds():
            date = context.timeline.date_for_day(day)
            nxds = frozenset(context.dga.nxdomains(date))
            if self._compensate:
                universe = nxds & context.detected_nxds(day)
            else:
                universe = nxds
            if not universe:
                per_epoch[day] = 0.0
                continue
            observed = {
                l.domain
                for l in lookups
                if start <= l.timestamp < end and l.domain in universe
            }
            coverage = expected_q / params.n_nxd
            estimate = invert_distinct_count(
                len(observed), len(universe) if self._compensate else len(nxds),
                coverage,
            )
            per_epoch[day] = min(estimate, _N_CAP)
        return PopulationEstimate(
            value=average_per_epoch(per_epoch),
            estimator=self.name,
            per_epoch=per_epoch,
            details=details,
        )
