"""Infection waves: time-varying ground-truth bot populations.

The paper's real trace shows each DGA family active over a span of months
with day-to-day population swings (Figure 7).  An
:class:`InfectionWave` models one family's lifetime in the network: a
ramp-up to a peak, a plateau with multiplicative day-to-day noise, a
decay as remediation progresses, and sporadic inactive days — all
deterministic given the wave's seed, so ground truth is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InfectionWave"]


@dataclass(frozen=True)
class InfectionWave:
    """One family's infection profile over the study period.

    Attributes:
        family: DGA family name (see :mod:`repro.dga.families`).
        family_seed: seed of the family's DGA instance.
        start_day: first active day index.
        end_day: last active day index (inclusive).
        peak: plateau population in bots.
        ramp_days: days to ramp from 1 to the peak (and to decay back).
        activity: probability that a day within the window is active.
        noise_sigma: lognormal σ of day-to-day population noise.
        seed: wave-local randomness seed.
    """

    family: str
    family_seed: int
    start_day: int
    end_day: int
    peak: int
    ramp_days: int = 14
    activity: float = 0.85
    noise_sigma: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.end_day < self.start_day:
            raise ValueError("end_day must be >= start_day")
        if self.peak < 1:
            raise ValueError("peak must be >= 1")
        if not 0 < self.activity <= 1:
            raise ValueError("activity must be in (0, 1]")

    def _envelope(self, day_index: int) -> float:
        """Deterministic ramp/plateau/decay shape in [0, 1]."""
        if day_index < self.start_day or day_index > self.end_day:
            return 0.0
        into = day_index - self.start_day
        remaining = self.end_day - day_index
        ramp = min(1.0, (into + 1) / max(self.ramp_days, 1))
        decay = min(1.0, (remaining + 1) / max(self.ramp_days, 1))
        return min(ramp, decay)

    def population_on(self, day_index: int) -> int:
        """Nominal active-bot population for ``day_index`` (0 if inactive).

        Deterministic per ``(seed, day_index)``.
        """
        envelope = self._envelope(day_index)
        if envelope == 0.0:
            return 0
        rng = np.random.default_rng((self.seed, day_index, hash(self.family) & 0xFFFF))
        if rng.random() > self.activity:
            return 0
        noise = float(np.exp(rng.normal(0.0, self.noise_sigma)))
        population = int(round(self.peak * envelope * noise))
        return max(1, population)

    def max_population(self) -> int:
        """Upper bound on any day's population (sizes the bot pool)."""
        tail = float(np.exp(4.0 * self.noise_sigma))
        return max(self.peak, int(self.peak * tail) + 1)
