"""Synthetic year-long enterprise trace: the substitute for the paper's
proprietary §V-B dataset (see DESIGN.md §4 for the substitution record)."""

from .trace_gen import (
    DayObservation,
    EnterpriseConfig,
    EnterpriseTraceGenerator,
    default_waves,
)
from .waves import InfectionWave

__all__ = [
    "DayObservation",
    "EnterpriseConfig",
    "EnterpriseTraceGenerator",
    "default_waves",
    "InfectionWave",
]
