"""Synthetic year-long enterprise DNS trace (real-data substitute, §V-B).

The paper evaluates BotMeter on a proprietary one-year trace from a local
DNS server resolving for >22.5K IPs (15K active/day).  That trace is not
available, so this module synthesises the closest equivalent that
exercises the same code paths:

* one local caching DNS server forwarding to a border server (the paper's
  observable dataset omits the forwarding-server field because there is
  only one local server);
* benign Zipf/diurnal background traffic from a configurable client
  sample (scaled down from 15K clients for tractability — the estimators
  only consume *matched* lookups, so benign volume affects realism of
  caching and collision noise, not the estimation maths);
* three concurrent infection waves — newGoZ (AR), Ramnit (AU),
  Qakbot (AU) — with time-varying daily populations;
* 1-second timestamp granularity, as in the paper's collection
  infrastructure.

Generation is *streaming*: one :class:`DayObservation` at a time, so a
full year never has to be held in memory.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..dga.base import Dga
from ..dga.families import make_family
from ..dns.authority import RegistrationAuthority
from ..dns.hierarchy import DnsHierarchy
from ..dns.message import ForwardedLookup
from ..sim.benign import BenignConfig, BenignTrafficModel
from ..sim.bots import Bot
from ..sim.trace import sort_raw
from ..timebase import SECONDS_PER_DAY, Timeline
from .waves import InfectionWave

__all__ = ["EnterpriseConfig", "DayObservation", "EnterpriseTraceGenerator", "default_waves"]


def default_waves() -> tuple[InfectionWave, ...]:
    """The three §V-B families, timed to echo Figure 7.

    Day indices are relative to the study origin 2014-05-01: Qakbot
    surfaces in late June, Ramnit in July, newGoZ in September.
    """
    return (
        InfectionWave("new_goz", family_seed=11, start_day=134, end_day=201, peak=30, seed=1),
        InfectionWave("ramnit", family_seed=13, start_day=67, end_day=147, peak=22, seed=2),
        InfectionWave("qakbot", family_seed=17, start_day=54, end_day=201, peak=12, seed=3),
    )


@dataclass(frozen=True)
class EnterpriseConfig:
    """Shape of the synthetic enterprise study."""

    n_days: int = 365
    origin: _dt.date = _dt.date(2014, 5, 1)
    seed: int = 0
    waves: tuple[InfectionWave, ...] = field(default_factory=default_waves)
    n_benign_clients: int = 80
    benign: BenignConfig = field(
        default_factory=lambda: BenignConfig(
            n_domains=2_000, lookups_per_client_per_day=200.0
        )
    )
    timestamp_granularity: float = 1.0
    negative_ttl: float = 7_200.0
    positive_ttl: float = 86_400.0
    #: Probability that a forwarded lookup appears twice at the vantage
    #: point (dual A/AAAA queries and resolver retries — ubiquitous in
    #: real traces).  Duplicates repeat the same domain within seconds,
    #: which is precisely what degrades MT on real data (§V-B): its
    #: heuristic #1 attributes the repeat to a *new* bot.
    duplicate_rate: float = 0.25
    #: Fraction of each wave's bots that sit behind shared NAT gateways
    #: (groups of :attr:`nat_group_size` share one source IP).  The
    #: paper's ground truth counts *distinct client IPs* (footnote 4),
    #: which under-counts NATed bots; setting this non-zero makes the
    #: IP-based and bot-based ground truths diverge so that bias can be
    #: studied.
    nat_share: float = 0.0
    nat_group_size: int = 4
    #: Fraction of each wave's bot pool that resolves over encrypted DNS
    #: (DoH/DoT) and so never appears at the local-resolver vantage.
    #: Adopters still activate, still count in ``actual``/``raw_matched``
    #: — they are real bots the border simply cannot see, the §PAPERS.md
    #: encrypted-queries visibility-loss scenario.
    doh_adoption: float = 0.0

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise ValueError("n_days must be >= 1")
        if not self.waves:
            raise ValueError("need at least one infection wave")
        if self.n_benign_clients < 0:
            raise ValueError("n_benign_clients must be >= 0")
        if not 0 <= self.duplicate_rate <= 1:
            raise ValueError("duplicate_rate must be in [0, 1]")
        if not 0 <= self.nat_share <= 1:
            raise ValueError("nat_share must be in [0, 1]")
        if self.nat_group_size < 2:
            raise ValueError("nat_group_size must be >= 2")
        if not 0 <= self.doh_adoption <= 1:
            raise ValueError("doh_adoption must be in [0, 1]")


@dataclass
class DayObservation:
    """One day of the study: the vantage-point stream plus ground truth.

    Two ground truths are kept: ``actual`` counts active *bots* (device
    instances) while ``actual_ips`` counts distinct client IPs in the raw
    stream — the paper's methodology.  They coincide unless NAT sharing
    is configured.
    """

    day_index: int
    date: _dt.date
    observable: list[ForwardedLookup]
    actual: dict[str, int]  # family -> active bots
    raw_matched: dict[str, int]  # family -> raw (pre-cache) matched lookups
    actual_ips: dict[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.actual_ips is None:
            self.actual_ips = dict(self.actual)


class EnterpriseTraceGenerator:
    """Streams the synthetic enterprise trace day by day."""

    def __init__(self, config: EnterpriseConfig) -> None:
        self.config = config
        self.timeline = Timeline(config.origin)
        self._rng = np.random.default_rng(config.seed)

        self.dgas: dict[str, Dga] = {}
        self._bot_pools: dict[str, list[Bot]] = {}
        authority_benign: list[str] = []

        self._benign_model = (
            BenignTrafficModel(config.benign, self._rng)
            if config.n_benign_clients > 0
            else None
        )
        if self._benign_model is not None:
            authority_benign = self._benign_model.catalogue

        self.authority = RegistrationAuthority(
            benign=authority_benign,
            positive_ttl=config.positive_ttl,
            negative_ttl=config.negative_ttl,
        )
        for wave in config.waves:
            dga = make_family(wave.family, wave.family_seed)
            self.dgas[wave.family] = dga
            self.authority.add_registration_provider(dga.registered)
            pool_size = wave.max_population()
            n_natted = int(round(config.nat_share * pool_size))
            bots = []
            for i in range(pool_size):
                if i < n_natted:
                    gateway = i // config.nat_group_size
                    client = f"10.9.{gateway // 250}.{gateway % 250}-nat-{wave.family}"
                else:
                    client = f"10.1.{i // 250}.{i % 250}-{wave.family}"
                bots.append(Bot(i, client, dga, salt=config.seed))
            self._bot_pools[wave.family] = bots

        self.hierarchy = DnsHierarchy(
            self.authority,
            n_local_servers=1,
            timeline=self.timeline,
            timestamp_granularity=config.timestamp_granularity,
            negative_ttl=config.negative_ttl,
            positive_ttl=config.positive_ttl,
        )
        self._server_id = self.hierarchy.server_ids[0]
        self._benign_clients = [
            f"10.0.{i // 250}.{i % 250}" for i in range(config.n_benign_clients)
        ]
        # Encrypted-DNS adopters: the last ``round(adoption * pool)``
        # bots of each wave (the non-NATted tail, so one adopter does
        # not silently hide a whole NAT gateway).  Deterministic and
        # RNG-free: a zero-adoption config reproduces the historical
        # stream bit-exactly.
        self._doh_clients: set[str] = set()
        if config.doh_adoption > 0:
            for wave in config.waves:
                pool = self._bot_pools[wave.family]
                k = int(round(config.doh_adoption * len(pool)))
                self._doh_clients.update(
                    bot.client_id for bot in pool[len(pool) - k :]
                )

    def _day_nxd_sets(self, date: _dt.date) -> dict[str, frozenset[str]]:
        return {
            family: frozenset(dga.nxdomains(date))
            for family, dga in self.dgas.items()
        }

    def days(self) -> Iterator[DayObservation]:
        """Generate the study day by day (caches persist across days)."""
        config = self.config
        for day_index in range(config.n_days):
            date = self.timeline.date_for_day(day_index)
            day_start = self.timeline.start_of_day(day_index)
            valid = self.authority.valid_on(date)

            lookups = []
            actual: dict[str, int] = {}
            actual_ips: dict[str, int] = {}
            for wave in config.waves:
                population = wave.population_on(day_index)
                actual[wave.family] = 0
                actual_ips[wave.family] = 0
                if population == 0:
                    continue
                pool = self._bot_pools[wave.family]
                population = min(population, len(pool))
                chosen = self._rng.choice(len(pool), size=population, replace=False)
                offsets = np.sort(self._rng.uniform(0, SECONDS_PER_DAY, size=population))
                active = 0
                active_ips: set[str] = set()
                for bot_idx, offset in zip(chosen, offsets):
                    bot = pool[int(bot_idx)]
                    train = bot.activate(
                        date, day_start + float(offset), valid, self._rng
                    )
                    if train:
                        lookups.extend(train)
                        active += 1
                        active_ips.add(bot.client_id)
                actual[wave.family] = active
                actual_ips[wave.family] = len(active_ips)

            if self._benign_model is not None and self._benign_clients:
                lookups.extend(
                    self._benign_model.day_lookups(self._benign_clients, day_start)
                )

            nxd_sets = self._day_nxd_sets(date)
            raw_matched = {family: 0 for family in self.dgas}
            for lookup in lookups:
                for family, nxds in nxd_sets.items():
                    if lookup.domain in nxds:
                        raw_matched[family] += 1
                        break

            for lookup in sort_raw(lookups):
                if lookup.client in self._doh_clients:
                    continue  # encrypted: invisible at this vantage
                self.hierarchy.lookup(lookup.client, lookup.domain, lookup.timestamp)
            observable = self.hierarchy.drain_observed()
            if config.duplicate_rate > 0 and observable:
                dup_mask = self._rng.random(len(observable)) < config.duplicate_rate
                extra = [
                    ForwardedLookup(
                        r.timestamp + float(self._rng.integers(0, 3)),
                        r.server,
                        r.domain,
                    )
                    for r, dup in zip(observable, dup_mask)
                    if dup
                ]
                observable.extend(extra)
            observable.sort(key=lambda r: (r.timestamp, r.domain))
            yield DayObservation(
                day_index, date, observable, actual, raw_matched, actual_ips
            )
