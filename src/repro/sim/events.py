"""A minimal discrete-event simulation engine.

The trace generators in :mod:`repro.sim.network` pre-compute all lookups
and replay them sorted — fine for static scenarios.  Dynamic scenarios
(mid-day C2 takedowns, cache flushes, staged infections) need events
that *change the world* between lookups; :class:`EventLoop` provides the
classic priority-queue engine for those.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["EventLoop"]


class EventLoop:
    """Priority-queue discrete-event loop.

    Actions are ``Callable[[EventLoop], None]``; they may schedule
    further events.  Ties are broken by insertion order, making runs
    fully deterministic.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[tuple[float, int, Callable[["EventLoop"], None]]] = []
        self._sequence = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, time: float, action: Callable[["EventLoop"], None]) -> None:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        heapq.heappush(self._queue, (time, next(self._sequence), action))

    def schedule_in(self, delay: float, action: Callable[["EventLoop"], None]) -> None:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule(self._now + delay, action)

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _seq, action = heapq.heappop(self._queue)
        self._now = time
        self._processed += 1
        action(self)
        return True

    def run_until(self, end_time: float) -> int:
        """Run every event with time < ``end_time``; returns the count.

        The clock is left at ``end_time`` (or later if an executed event
        scheduled nothing beyond it).
        """
        executed = 0
        while self._queue and self._queue[0][0] < end_time:
            self.step()
            executed += 1
        self._now = max(self._now, end_time)
        return executed

    def run(self) -> int:
        """Drain the queue completely; returns the executed count."""
        executed = 0
        while self.step():
            executed += 1
        return executed
