"""Benign background DNS traffic.

Realistic vantage-point streams are dominated by legitimate lookups, so
the robustness experiments and the enterprise trace need a benign
workload: a Zipf-popularity catalogue of valid domains, a diurnal
(sinusoidal) aggregate rate, and a small typo rate producing benign
NXDOMAINs that are *not* DGA-generated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dns.message import Lookup
from ..timebase import SECONDS_PER_DAY

__all__ = ["BenignConfig", "BenignTrafficModel"]


@dataclass(frozen=True)
class BenignConfig:
    """Shape of the benign workload.

    Attributes:
        n_domains: size of the benign domain catalogue.
        lookups_per_client_per_day: mean lookups a client issues daily.
        zipf_exponent: popularity skew (``~1.0`` matches web measurements).
        typo_rate: fraction of lookups that are misspelled (NXDOMAIN).
        diurnal_amplitude: 0 disables the day/night cycle; 1 makes the
            overnight rate drop to zero.
    """

    n_domains: int = 5_000
    lookups_per_client_per_day: float = 300.0
    zipf_exponent: float = 1.0
    typo_rate: float = 0.01
    diurnal_amplitude: float = 0.6

    def __post_init__(self) -> None:
        if self.n_domains < 1:
            raise ValueError("benign catalogue must contain at least one domain")
        if self.lookups_per_client_per_day < 0:
            raise ValueError("lookup rate must be >= 0")
        if not 0 <= self.typo_rate <= 1:
            raise ValueError("typo_rate must be in [0, 1]")
        if not 0 <= self.diurnal_amplitude <= 1:
            raise ValueError("diurnal_amplitude must be in [0, 1]")


class BenignTrafficModel:
    """Generates benign lookups for a set of clients.

    The catalogue and popularity weights are fixed at construction so
    repeated days reuse the same domain universe (that is what lets
    positive caching absorb most benign traffic, as in real networks).
    """

    def __init__(self, config: BenignConfig, rng: np.random.Generator) -> None:
        self._config = config
        self._rng = rng
        self._domains = [f"site{i:05d}.example" for i in range(config.n_domains)]
        ranks = np.arange(1, config.n_domains + 1, dtype=float)
        weights = ranks ** (-config.zipf_exponent)
        self._popularity = weights / weights.sum()
        self._typo_counter = 0

    @property
    def catalogue(self) -> list[str]:
        """All benign (valid) domains this model can emit."""
        return list(self._domains)

    def _diurnal_weights(self, n_slots: int) -> np.ndarray:
        """Relative activity per uniform time slot across one day."""
        slot_centres = (np.arange(n_slots) + 0.5) / n_slots
        # Peak mid-day (t=0 is midnight): 1 - a*cos(2πx) peaks at x=0.5.
        weights = 1.0 - self._config.diurnal_amplitude * np.cos(2 * np.pi * slot_centres)
        return weights / weights.sum()

    def day_lookups(self, clients: list[str], day_start: float) -> list[Lookup]:
        """Draw one day of benign lookups for ``clients``.

        Lookup counts are Poisson per client; timestamps follow the
        diurnal profile; domains follow the Zipf popularity; a
        ``typo_rate`` fraction become unique NXD typos.
        """
        cfg = self._config
        if not clients or cfg.lookups_per_client_per_day == 0:
            return []
        counts = self._rng.poisson(cfg.lookups_per_client_per_day, size=len(clients))
        total = int(counts.sum())
        if total == 0:
            return []

        slot_weights = self._diurnal_weights(24)
        slots = self._rng.choice(24, size=total, p=slot_weights)
        offsets = (slots + self._rng.random(total)) * (SECONDS_PER_DAY / 24)
        domain_idx = self._rng.choice(cfg.n_domains, size=total, p=self._popularity)
        typo_mask = self._rng.random(total) < cfg.typo_rate

        lookups: list[Lookup] = []
        cursor = 0
        for client, count in zip(clients, counts):
            for k in range(count):
                i = cursor + k
                if typo_mask[i]:
                    self._typo_counter += 1
                    domain = f"tpyo{self._typo_counter:07d}.example"
                else:
                    domain = self._domains[domain_idx[i]]
                lookups.append(Lookup(day_start + float(offsets[i]), client, domain))
            cursor += count
        return lookups
