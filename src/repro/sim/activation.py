"""Bot-activation processes (§V-A).

The paper models the activations of a population of ``N`` bots within one
epoch as a Poisson process and evaluates two variants:

* **constant rate** — inter-activation gaps are i.i.d. ``Exp(λ0)`` with
  ``λ0 = N/δe``;
* **dynamic rate** — the gap before the *i*-th activation is
  ``Exp(λi)`` with ``λi = λ0·e^{κi}``, ``κi ~ N(0, σ²)``; larger ``σ``
  means a more erratically varying activation rate.

Each bot activates at most once per epoch; bots whose scheduled time
falls past the epoch end simply do not activate that day, which is why
the *actual* daily population used as ground truth can be smaller than
``N``.
"""

from __future__ import annotations

import numpy as np

from ..timebase import SECONDS_PER_DAY

__all__ = ["activation_schedule", "ActivationProcess"]


def activation_schedule(
    n_bots: int,
    rng: np.random.Generator,
    epoch_length: float = SECONDS_PER_DAY,
    sigma: float = 0.0,
) -> np.ndarray:
    """Draw one epoch's activation times for up to ``n_bots`` bots.

    Returns the sorted array of activation offsets (seconds from epoch
    start) for the bots that activate within the epoch; its length is the
    epoch's *actual* active population.

    Args:
        n_bots: nominal population ``N``.
        rng: simulation randomness source.
        epoch_length: ``δe`` in seconds (one day by default).
        sigma: dynamics parameter ``σ``; ``0`` selects the constant-rate
            variant.
    """
    if n_bots < 0:
        raise ValueError(f"n_bots must be >= 0, got {n_bots}")
    if epoch_length <= 0:
        raise ValueError(f"epoch_length must be positive, got {epoch_length}")
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if n_bots == 0:
        return np.empty(0, dtype=float)

    base_rate = n_bots / epoch_length
    if sigma == 0.0:
        gaps = rng.exponential(1.0 / base_rate, size=n_bots)
    else:
        kappa = rng.normal(0.0, sigma, size=n_bots)
        rates = base_rate * np.exp(kappa)
        gaps = rng.exponential(1.0, size=n_bots) / rates
    times = np.cumsum(gaps)
    return times[times < epoch_length]


class ActivationProcess:
    """Reusable generator of per-epoch activation schedules.

    Thin stateful wrapper that remembers the population, epoch length and
    dynamics so multi-day simulations draw day after day with one call.
    """

    def __init__(
        self,
        n_bots: int,
        sigma: float = 0.0,
        epoch_length: float = SECONDS_PER_DAY,
        seed: int | np.random.Generator = 0,
    ) -> None:
        self._n_bots = n_bots
        self._sigma = sigma
        self._epoch_length = epoch_length
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )

    @property
    def n_bots(self) -> int:
        return self._n_bots

    def draw_epoch(self, epoch_start: float = 0.0) -> np.ndarray:
        """Absolute activation times for one epoch starting at
        ``epoch_start``."""
        offsets = activation_schedule(
            self._n_bots, self._rng, self._epoch_length, self._sigma
        )
        return epoch_start + offsets
