"""Bot behaviour: turning an activation into a train of DNS lookups.

On activation a bot materialises its query barrel for the day and walks
it in order, one lookup every ``δi`` seconds (or a jittered gap for
families without a fixed interval), stopping as soon as a domain resolves
— i.e. the domain is registered that day — or after ``θq`` attempts
(§III).  The lookup on the *hit* domain itself is still issued (the bot
had to query it to learn it resolves), so it appears in the raw stream.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Collection

import numpy as np

from ..dga.base import Dga
from ..dga.wordgen import Lcg
from ..dns.message import Lookup

__all__ = ["Bot", "activation_seed"]


def activation_seed(
    dga_seed: int,
    bot_index: int,
    day: _dt.date,
    activation_index: int = 0,
    salt: int = 0,
) -> int:
    """Deterministic per-(bot, day, activation) seed for barrel drawing.

    Keeps the entire simulation reproducible from a single master seed
    while guaranteeing different bots (and repeat activations) draw
    independent barrels.  ``salt`` ties the draws to the simulation run
    so independent trials (different :class:`~repro.sim.network.SimConfig`
    seeds) produce independent barrels.
    """
    return (
        (dga_seed * 0x9E3779B1)
        ^ (bot_index * 0x85EBCA77)
        ^ (day.toordinal() * 0xC2B2AE3D)
        ^ (activation_index * 0x27D4EB2F)
        ^ (salt * 0x165667B1)
    ) & ((1 << 64) - 1)


@dataclass
class Bot:
    """One infected device.

    Attributes:
        bot_index: stable numeric identity within the botnet.
        client_id: the device identifier that appears in the raw DNS
            stream (e.g. an internal IP address).
        dga: the domain generation algorithm this bot embeds.
        salt: run entropy mixed into per-activation barrel seeds.
    """

    bot_index: int
    client_id: str
    dga: Dga
    salt: int = 0

    def activate(
        self,
        day: _dt.date,
        start_time: float,
        valid_domains: Collection[str],
        rng: np.random.Generator,
        activation_index: int = 0,
    ) -> list[Lookup]:
        """Produce the raw lookups of one activation starting at
        ``start_time``.

        ``valid_domains`` is the authoritative valid set for ``day``; the
        bot stops after its first hit in it (C2 found) or after the full
        barrel (abort).
        """
        barrel_rng = Lcg(
            activation_seed(
                self.dga.seed, self.bot_index, day, activation_index, self.salt
            )
        )
        barrel = self.dga.barrel(day, barrel_rng)
        interval = self.dga.params.query_interval
        fixed = self.dga.params.fixed_interval

        lookups: list[Lookup] = []
        t = start_time
        for domain in barrel:
            lookups.append(Lookup(t, self.client_id, domain))
            if domain in valid_domains:
                break
            if fixed:
                t += interval
            else:
                # δi = "none": gaps jitter uniformly around the nominal
                # interval, destroying the congruence structure MT's
                # heuristic #3 relies on.
                t += interval * rng.uniform(0.2, 1.8)
        return lookups
