"""C2-takedown dynamics (§I motivation).

The paper motivates DGAs by takedown resilience: "even if the current C2
domains or IPs are captured and taken down, the bots will eventually
identify the relocated C2 servers via looking up the next set of
automatically generated domains."  This scenario makes that dynamic
measurable:

* day 0 runs normally until ``takedown_time``, when the registrar
  removes the day's registered C2 domains (they become NXDs);
* bots activating after the takedown exhaust their full barrels without
  a hit — the NXD volume at the vantage point spikes;
* on the next epoch the botmaster registers fresh domains from the new
  pool and the botnet re-converges.

The simulation is event-driven (each activation is an event against the
world state at its own time) and reports per-hour NXD lookup volumes,
per-phase C2 success rates, and BotMeter's estimates through the
turbulence.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

import numpy as np

from ..dga.base import Dga
from ..dga.families import make_family
from ..dns.authority import RegistrationAuthority
from ..dns.hierarchy import DnsHierarchy
from ..dns.message import ForwardedLookup, Lookup
from ..timebase import SECONDS_PER_DAY, SECONDS_PER_HOUR, Timeline
from .activation import activation_schedule
from .bots import Bot
from .events import EventLoop
from .trace import sort_observable

__all__ = ["TakedownConfig", "TakedownResult", "simulate_takedown"]


@dataclass(frozen=True)
class TakedownConfig:
    """Scenario parameters."""

    family: str = "new_goz"
    family_seed: int = 7
    n_bots: int = 64
    takedown_time: float = 10 * SECONDS_PER_HOUR  # seconds into day 0
    n_days: int = 2
    seed: int = 0
    negative_ttl: float = 7_200.0
    positive_ttl: float = 86_400.0
    timestamp_granularity: float = 0.1
    origin: _dt.date = _dt.date(2014, 5, 1)

    def __post_init__(self) -> None:
        if not 0 <= self.takedown_time < SECONDS_PER_DAY:
            raise ValueError("takedown_time must fall inside day 0")
        if self.n_days < 1:
            raise ValueError("n_days must be >= 1")
        if self.n_bots < 1:
            raise ValueError("n_bots must be >= 1")


@dataclass
class TakedownResult:
    """Everything the scenario measures."""

    config: TakedownConfig
    dga: Dga
    timeline: Timeline
    observable: list[ForwardedLookup]
    raw: list[Lookup]
    #: per activation: (time, found_c2)
    activations: list[tuple[float, bool]] = field(default_factory=list)

    def success_rate(self, start: float, end: float) -> float:
        """Fraction of activations in [start, end) that reached a C2."""
        window = [ok for t, ok in self.activations if start <= t < end]
        if not window:
            return 0.0
        return sum(window) / len(window)

    def valid_at(self, timestamp: float) -> frozenset[str]:
        """The domains that actually resolved at ``timestamp``."""
        date = self.timeline.date_of(timestamp)
        registered = frozenset(self.dga.registered(date))
        if (
            date == self.timeline.date_for_day(0)
            and timestamp >= self.config.takedown_time
        ):
            return frozenset()
        return registered

    def hourly_nxd_volume(self) -> list[int]:
        """Vantage-point NXD-lookup counts per hour of the scenario."""
        n_hours = self.config.n_days * 24
        counts = [0] * n_hours
        for record in self.observable:
            hour = int(record.timestamp // SECONDS_PER_HOUR)
            if hour >= n_hours:
                continue
            if record.domain not in self.valid_at(record.timestamp):
                counts[hour] += 1
        return counts


class _TakedownWorld:
    """Mutable world state the events act on."""

    def __init__(self, config: TakedownConfig) -> None:
        self.config = config
        self.timeline = Timeline(config.origin)
        self.dga = make_family(config.family, config.family_seed)
        self.authority = RegistrationAuthority(
            positive_ttl=config.positive_ttl, negative_ttl=config.negative_ttl
        )
        self.taken_down = False
        day0 = self.timeline.date_for_day(0)
        self._day0_registered = self.dga.registered(day0)

        def provider(date: _dt.date) -> set[str]:
            registered = self.dga.registered(date)
            if date == day0 and self.taken_down:
                return set()
            return registered

        self.authority.add_registration_provider(provider)
        self.hierarchy = DnsHierarchy(
            self.authority,
            n_local_servers=1,
            timeline=self.timeline,
            timestamp_granularity=config.timestamp_granularity,
            negative_ttl=config.negative_ttl,
            positive_ttl=config.positive_ttl,
        )
        self.rng = np.random.default_rng(config.seed)
        self.bots = [
            Bot(i, f"bot-{i:04d}", self.dga, salt=config.seed)
            for i in range(config.n_bots)
        ]
        self.raw: list[Lookup] = []
        self.activations: list[tuple[float, bool]] = []

    def take_down(self, _loop: EventLoop) -> None:
        """Remove day-0 registrations; invalidate the authority's cache."""
        self.taken_down = True
        self.authority._day_cache = None  # noqa: SLF001 - deliberate reset

    def activate_bot(self, bot: Bot, when: float) -> None:
        date = self.timeline.date_of(when)
        valid = self.authority.valid_on(date)
        train = bot.activate(date, when, valid, self.rng)
        found = bool(train) and train[-1].domain in valid
        self.activations.append((when, found))
        self.raw.extend(train)
        for lookup in train:
            self.hierarchy.lookup(lookup.client, lookup.domain, lookup.timestamp)


def simulate_takedown(config: TakedownConfig | None = None) -> TakedownResult:
    """Run the takedown scenario and return its measurements."""
    config = config or TakedownConfig()
    world = _TakedownWorld(config)
    loop = EventLoop()

    # Schedule every bot activation for every day, plus the takedown.
    for day in range(config.n_days):
        day_start = day * SECONDS_PER_DAY
        times = activation_schedule(config.n_bots, world.rng, SECONDS_PER_DAY)
        order = world.rng.permutation(config.n_bots)
        for slot, offset in enumerate(times):
            bot = world.bots[order[slot]]
            when = day_start + float(offset)
            loop.schedule(
                when,
                lambda lp, b=bot, t=when: world.activate_bot(b, t),
            )
    loop.schedule(config.takedown_time, world.take_down)
    loop.run()

    return TakedownResult(
        config=config,
        dga=world.dga,
        timeline=world.timeline,
        observable=sort_observable(world.hierarchy.drain_observed()),
        raw=sorted(world.raw, key=lambda l: (l.timestamp, l.domain)),
        activations=sorted(world.activations),
    )
