"""Botnet/network simulation substrate: activation processes, bot query
trains, benign background traffic, trace containers, noise injection, and
the end-to-end network simulator."""

from .activation import ActivationProcess, activation_schedule
from .benign import BenignConfig, BenignTrafficModel
from .bots import Bot, activation_seed
from .events import EventLoop
from .network import GroundTruth, SimConfig, SimResult, simulate
from .noise import drop_records, inject_spurious_nxds, jitter_timestamps
from .takedown import TakedownConfig, TakedownResult, simulate_takedown
from .trace import (
    distinct_domains,
    load_observable_csv,
    load_raw_csv,
    observable_by_server,
    save_observable_csv,
    save_raw_csv,
    sort_observable,
    sort_raw,
    within_window,
)

__all__ = [
    "ActivationProcess",
    "activation_schedule",
    "BenignConfig",
    "BenignTrafficModel",
    "Bot",
    "activation_seed",
    "EventLoop",
    "TakedownConfig",
    "TakedownResult",
    "simulate_takedown",
    "GroundTruth",
    "SimConfig",
    "SimResult",
    "simulate",
    "drop_records",
    "inject_spurious_nxds",
    "jitter_timestamps",
    "distinct_domains",
    "load_observable_csv",
    "load_raw_csv",
    "observable_by_server",
    "save_observable_csv",
    "save_raw_csv",
    "sort_observable",
    "sort_raw",
    "within_window",
]
