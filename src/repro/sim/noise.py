"""Observation-noise injection for robustness experiments.

BotMeter claims resilience against noisy and missing observations; these
helpers degrade an observable trace in controlled ways so the claim can
be tested: random record loss (collector drops), spurious non-DGA NXD
records (noise), and timestamp jitter (clock skew between collectors).

The same fault *distributions* also drive the live-service fault
injector (:mod:`repro.service.faults`): burst lengths are geometric
(:func:`geometric_burst_length`), and the batch-trace analogues of the
streaming faults — :func:`burst_drop_records`,
:func:`duplicate_records` — live here so offline robustness sweeps and
the service soak degrade traces the same way.
"""

from __future__ import annotations

import math

import numpy as np

from ..dns.message import ForwardedLookup
from .trace import sort_observable

__all__ = [
    "drop_records",
    "inject_spurious_nxds",
    "jitter_timestamps",
    "geometric_burst_length",
    "burst_drop_records",
    "duplicate_records",
]


def geometric_burst_length(u: float, mean_length: float) -> int:
    """Map a uniform draw onto a geometric burst length with the given
    mean — the shared loss-burst distribution of the batch helpers and
    the streaming fault injector.

    Pure function of the draw, so it works with any RNG (``numpy`` or
    ``random``) and keeps seeded schedules position-deterministic.
    """
    if mean_length < 1:
        raise ValueError(f"mean_length must be >= 1, got {mean_length}")
    if mean_length == 1:
        return 1
    p = 1.0 / mean_length
    u = min(max(u, 0.0), 1.0 - 1e-12)
    return 1 + int(math.log1p(-u) / math.log1p(-p))


def drop_records(
    records: list[ForwardedLookup], miss_rate: float, rng: np.random.Generator
) -> list[ForwardedLookup]:
    """Randomly drop a ``miss_rate`` fraction of records (collector loss)."""
    if not 0 <= miss_rate <= 1:
        raise ValueError(f"miss_rate must be in [0, 1], got {miss_rate}")
    if miss_rate == 0 or not records:
        return list(records)
    keep = rng.random(len(records)) >= miss_rate
    return [r for r, k in zip(records, keep) if k]


def burst_drop_records(
    records: list[ForwardedLookup],
    rate: float,
    mean_burst: float,
    rng: np.random.Generator,
) -> list[ForwardedLookup]:
    """Drop *bursts* of consecutive records (upstream hiccups).

    A burst starts at each record with probability ``rate`` and runs for
    a geometric number of records with mean ``mean_burst`` — correlated
    loss, unlike the independent thinning of :func:`drop_records`.
    """
    if not 0 <= rate <= 1:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if rate == 0 or not records:
        return list(records)
    kept: list[ForwardedLookup] = []
    burst_left = 0
    for record in records:
        if burst_left > 0:
            burst_left -= 1
            continue
        if rng.random() < rate:
            burst_left = geometric_burst_length(float(rng.random()), mean_burst) - 1
            continue
        kept.append(record)
    return kept


def duplicate_records(
    records: list[ForwardedLookup], rate: float, rng: np.random.Generator
) -> list[ForwardedLookup]:
    """Deliver a ``rate`` fraction of records twice (retransmissions,
    at-least-once collectors).  Duplicates are adjacent in trace order."""
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    if rate == 0 or not records:
        return list(records)
    doubled = rng.random(len(records)) < rate
    out: list[ForwardedLookup] = []
    for record, twice in zip(records, doubled):
        out.append(record)
        if twice:
            out.append(record)
    return out


def inject_spurious_nxds(
    records: list[ForwardedLookup],
    rate: float,
    rng: np.random.Generator,
    servers: list[str] | None = None,
) -> list[ForwardedLookup]:
    """Insert random unrelated NXD lookups at ``rate`` × len(records).

    The injected domains never collide with DGA pools (distinct suffix),
    modelling the non-DGA junk a real collector interleaves.
    """
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    if rate == 0 or not records:
        return list(records)
    t_min = records[0].timestamp
    t_max = records[-1].timestamp if records[-1].timestamp > t_min else t_min + 1.0
    server_pool = servers or sorted({r.server for r in records})
    n_new = int(round(rate * len(records)))
    injected = [
        ForwardedLookup(
            float(rng.uniform(t_min, t_max)),
            server_pool[int(rng.integers(len(server_pool)))],
            f"junk{int(rng.integers(10**9)):09d}.invalid",
        )
        for _ in range(n_new)
    ]
    return sort_observable(list(records) + injected)


def jitter_timestamps(
    records: list[ForwardedLookup], max_skew: float, rng: np.random.Generator
) -> list[ForwardedLookup]:
    """Add uniform ±``max_skew`` seconds of jitter to every timestamp."""
    if max_skew < 0:
        raise ValueError(f"max_skew must be >= 0, got {max_skew}")
    if max_skew == 0:
        return list(records)
    jittered = [
        ForwardedLookup(
            max(0.0, r.timestamp + float(rng.uniform(-max_skew, max_skew))),
            r.server,
            r.domain,
        )
        for r in records
    ]
    return sort_observable(jittered)
