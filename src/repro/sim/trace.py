"""Trace containers and (de)serialisation.

A simulation yields two parallel views of the same traffic (§V-B):

* the **raw trace** ``⟨timestamp, client, domain⟩`` — below the local
  servers, used only to compute ground truth;
* the **observable trace** ``⟨timestamp, server, domain⟩`` — the
  cache-filtered stream at the vantage point, the only input BotMeter is
  allowed to consume.
"""

from __future__ import annotations

import csv
from collections import defaultdict
from operator import attrgetter
from pathlib import Path
from typing import Iterable, Sequence

from ..dns.message import ForwardedLookup, Lookup

#: Sort keys as C-level attrgetters — these run over every simulated
#: record, and batch_series re-sorts whole traces per replay.
_RAW_KEY = attrgetter("timestamp", "client", "domain")
_OBSERVABLE_KEY = attrgetter("timestamp", "server", "domain")

__all__ = [
    "sort_raw",
    "sort_observable",
    "observable_by_server",
    "within_window",
    "distinct_domains",
    "save_observable_csv",
    "load_observable_csv",
    "save_raw_csv",
    "load_raw_csv",
]


def sort_raw(records: Iterable[Lookup]) -> list[Lookup]:
    """Chronologically (and deterministically) sorted raw records."""
    return sorted(records, key=_RAW_KEY)


def sort_observable(records: Iterable[ForwardedLookup]) -> list[ForwardedLookup]:
    """Chronologically (and deterministically) sorted observable records."""
    return sorted(records, key=_OBSERVABLE_KEY)


def observable_by_server(
    records: Iterable[ForwardedLookup],
) -> dict[str, list[ForwardedLookup]]:
    """Split the vantage-point stream per forwarding local server.

    This is the first step of landscape charting: BotMeter estimates one
    population per local server.
    """
    by_server: defaultdict[str, list[ForwardedLookup]] = defaultdict(list)
    for record in records:
        by_server[record.server].append(record)
    return dict(by_server)


def within_window(
    records: Sequence[ForwardedLookup], start: float, end: float
) -> list[ForwardedLookup]:
    """Records with ``start <= timestamp < end``."""
    if end < start:
        raise ValueError(f"window end {end} precedes start {start}")
    return [r for r in records if start <= r.timestamp < end]


def distinct_domains(records: Iterable[ForwardedLookup]) -> set[str]:
    """The set of distinct domains appearing in a stream."""
    return {r.domain for r in records}


def save_observable_csv(records: Iterable[ForwardedLookup], path: str | Path) -> None:
    """Persist an observable trace as ``timestamp,server,domain`` CSV."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["timestamp", "server", "domain"])
        for r in records:
            writer.writerow([f"{r.timestamp:.6f}", r.server, r.domain])


def load_observable_csv(path: str | Path) -> list[ForwardedLookup]:
    """Load an observable trace saved by :func:`save_observable_csv`."""
    records: list[ForwardedLookup] = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            records.append(
                ForwardedLookup(float(row["timestamp"]), row["server"], row["domain"])
            )
    return records


def save_raw_csv(records: Iterable[Lookup], path: str | Path) -> None:
    """Persist a raw trace as ``timestamp,client,domain`` CSV."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["timestamp", "client", "domain"])
        for r in records:
            writer.writerow([f"{r.timestamp:.6f}", r.client, r.domain])


def load_raw_csv(path: str | Path) -> list[Lookup]:
    """Load a raw trace saved by :func:`save_raw_csv`."""
    records: list[Lookup] = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            records.append(Lookup(float(row["timestamp"]), row["client"], row["domain"]))
    return records
