"""End-to-end botnet/network simulation (§V-A).

:func:`simulate` wires every substrate together: it builds a DGA family,
registers its botmaster with the authoritative resolver, spreads bots and
benign clients over the local DNS servers of a hierarchy, draws daily
activation schedules, replays every client lookup chronologically through
the caching-and-forwarding layer, and returns both traffic views plus the
per-day/per-server ground-truth populations.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

import numpy as np

from ..dga.base import Dga
from ..dga.families import make_family
from ..dns.authority import RegistrationAuthority
from ..dns.hierarchy import DnsHierarchy
from ..dns.message import ForwardedLookup, Lookup
from ..timebase import SECONDS_PER_DAY, Timeline
from .activation import activation_schedule
from .benign import BenignConfig, BenignTrafficModel
from .bots import Bot
from .trace import sort_observable, sort_raw

__all__ = ["SimConfig", "GroundTruth", "SimResult", "simulate"]


@dataclass(frozen=True)
class SimConfig:
    """Parameters of one synthetic experiment run.

    Defaults follow §V-A: one-day epochs, one-day observation windows
    handled by the caller, 2 h negative TTL, 1 day positive TTL, 100 ms
    timestamp granularity.
    """

    family: str = "murofet"
    family_seed: int = 7
    n_bots: int = 64
    n_local_servers: int = 1
    n_days: int = 1
    sigma: float = 0.0
    negative_ttl: float = 7_200.0
    positive_ttl: float = 86_400.0
    timestamp_granularity: float = 0.1
    seed: int = 0
    benign: BenignConfig | None = None
    benign_clients_per_server: int = 0
    origin: _dt.date = _dt.date(2014, 5, 1)
    #: Fraction of each subnet's bots that resolve over encrypted DNS
    #: (DoH/DoT): their lookups never transit the local resolver, so
    #: they vanish from the border vantage while staying in the raw
    #: stream and the ground truth — the visibility-loss scenario.
    doh_adoption: float = 0.0

    def __post_init__(self) -> None:
        if self.n_bots < 0:
            raise ValueError("n_bots must be >= 0")
        if not 0 <= self.doh_adoption <= 1:
            raise ValueError("doh_adoption must be in [0, 1]")
        if self.n_days < 1:
            raise ValueError("n_days must be >= 1")
        if self.n_local_servers < 1:
            raise ValueError("n_local_servers must be >= 1")
        if self.benign_clients_per_server < 0:
            raise ValueError("benign_clients_per_server must be >= 0")
        if self.benign_clients_per_server > 0 and self.benign is None:
            raise ValueError("benign clients configured without a BenignConfig")


class GroundTruth:
    """Actual active-bot populations, per day and per local server.

    Matches the paper's ground-truth definition: the number of distinct
    client devices that issued DGA lookups (raw stream) during the day.
    """

    def __init__(self) -> None:
        self._active: dict[tuple[int, str], set[str]] = {}

    def record(self, day_index: int, server_id: str, client: str) -> None:
        """Mark ``client`` active behind ``server_id`` on ``day_index``."""
        self._active.setdefault((day_index, server_id), set()).add(client)

    def population(self, day_index: int | None = None, server_id: str | None = None) -> int:
        """Distinct active bots, optionally filtered by day and/or server."""
        clients: set[tuple[int, str] | str] = set()
        total: set[str] = set()
        for (day, server), members in self._active.items():
            if day_index is not None and day != day_index:
                continue
            if server_id is not None and server != server_id:
                continue
            total |= members
        return len(total)

    def daily_populations(self, n_days: int, server_id: str | None = None) -> list[int]:
        """Active population for each day ``0..n_days-1``."""
        return [self.population(day, server_id) for day in range(n_days)]

    def servers(self) -> list[str]:
        """Local servers with any recorded activity, sorted."""
        return sorted({server for _, server in self._active})


@dataclass
class SimResult:
    """Everything a downstream experiment needs from one simulation."""

    config: SimConfig
    dga: Dga
    timeline: Timeline
    hierarchy: DnsHierarchy
    raw: list[Lookup]
    observable: list[ForwardedLookup]
    ground_truth: GroundTruth
    authority: RegistrationAuthority = field(repr=False, default=None)  # type: ignore[assignment]
    #: Clients invisible at the border vantage (encrypted-DNS adopters).
    doh_clients: frozenset[str] = frozenset()

    @property
    def n_days(self) -> int:
        return self.config.n_days


def _spread(count: int, buckets: int) -> list[int]:
    """Distribute ``count`` items over ``buckets`` as evenly as possible."""
    base, extra = divmod(count, buckets)
    return [base + (1 if i < extra else 0) for i in range(buckets)]


def simulate(config: SimConfig) -> SimResult:
    """Run one full simulation and return raw/observable traces plus
    ground truth.

    Deterministic given ``config`` (all randomness flows from
    ``config.seed`` and the DGA's ``family_seed``).
    """
    rng = np.random.default_rng(config.seed)
    timeline = Timeline(config.origin)
    dga = make_family(config.family, config.family_seed)

    benign_model = (
        BenignTrafficModel(config.benign, rng) if config.benign is not None else None
    )
    benign_catalogue = benign_model.catalogue if benign_model is not None else []

    authority = RegistrationAuthority(
        benign=benign_catalogue,
        positive_ttl=config.positive_ttl,
        negative_ttl=config.negative_ttl,
    )
    authority.add_registration_provider(dga.registered)

    hierarchy = DnsHierarchy(
        authority,
        n_local_servers=config.n_local_servers,
        timeline=timeline,
        timestamp_granularity=config.timestamp_granularity,
        negative_ttl=config.negative_ttl,
        positive_ttl=config.positive_ttl,
    )
    server_ids = hierarchy.server_ids

    # Assign bots and benign clients to subnets.
    bots_per_server = _spread(config.n_bots, config.n_local_servers)
    bots_by_server: dict[str, list[Bot]] = {}
    bot_index = 0
    for server_id, n_here in zip(server_ids, bots_per_server):
        members = []
        for _ in range(n_here):
            client = f"bot-{server_id}-{bot_index:04d}"
            hierarchy.assign_client(client, server_id)
            members.append(Bot(bot_index, client, dga, salt=config.seed))
            bot_index += 1
        bots_by_server[server_id] = members

    benign_clients: dict[str, list[str]] = {}
    for server_id in server_ids:
        clients = [
            f"host-{server_id}-{i:04d}" for i in range(config.benign_clients_per_server)
        ]
        for client in clients:
            hierarchy.assign_client(client, server_id)
        benign_clients[server_id] = clients

    ground_truth = GroundTruth()
    all_lookups: list[Lookup] = []
    lookup_owner: dict[str, str] = {}  # client -> server, for ground truth

    for server_id, members in bots_by_server.items():
        for bot in members:
            lookup_owner[bot.client_id] = server_id

    for day in range(config.n_days):
        day_start = timeline.start_of_day(day)
        day_date = timeline.date_for_day(day)
        valid = authority.valid_on(day_date)

        for server_id, members in bots_by_server.items():
            if not members:
                continue
            times = activation_schedule(
                len(members), rng, SECONDS_PER_DAY, config.sigma
            )
            # Shuffle which bots claim the day's activation slots so the
            # active subset varies day to day.
            order = rng.permutation(len(members))
            for slot, t_offset in enumerate(times):
                bot = members[order[slot]]
                ground_truth.record(day, server_id, bot.client_id)
                all_lookups.extend(
                    bot.activate(day_date, day_start + float(t_offset), valid, rng)
                )

        if benign_model is not None:
            for server_id in server_ids:
                clients = benign_clients[server_id]
                if clients:
                    all_lookups.extend(benign_model.day_lookups(clients, day_start))

    # Encrypted-DNS adopters: the first ``round(adoption * n)`` bots of
    # each subnet (deterministic, no RNG draw — a zero-adoption config
    # reproduces the historical stream bit-exactly).  Their lookups stay
    # in the raw stream and the ground truth; they simply never transit
    # the local resolver below.
    doh_clients: set[str] = set()
    if config.doh_adoption > 0:
        for server_id, members in bots_by_server.items():
            k = int(round(config.doh_adoption * len(members)))
            doh_clients.update(bot.client_id for bot in members[:k])

    # Replay chronologically through the caching hierarchy.
    for lookup in sort_raw(all_lookups):
        if lookup.client in doh_clients:
            continue
        hierarchy.lookup(lookup.client, lookup.domain, lookup.timestamp)

    observable = sort_observable(hierarchy.drain_observed())
    return SimResult(
        config=config,
        dga=dga,
        timeline=timeline,
        hierarchy=hierarchy,
        raw=sort_raw(all_lookups),
        observable=observable,
        ground_truth=ground_truth,
        authority=authority,
        doh_clients=frozenset(doh_clients),
    )
