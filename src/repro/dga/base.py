"""Core DGA abstractions: parameters, pool/barrel interfaces, and the
:class:`Dga` façade that ties a pool model, a barrel model, and a label
generator into one domain-generation algorithm.

Terminology follows §III of the paper:

* the **query pool** is the set of ``θ∃ + θ∅`` pseudo-random domains the
  DGA can produce for a given day, of which the botmaster registers ``θ∃``
  as C2 servers and the remaining ``θ∅`` resolve to NXDOMAIN;
* the **query barrel** is the ordered list of up to ``θq`` domains a bot
  actually attempts to resolve during one activation.
"""

from __future__ import annotations

import datetime as _dt
import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from .wordgen import Lcg, LabelSpec, date_seed

__all__ = [
    "PoolClass",
    "BarrelClass",
    "DgaParameters",
    "PoolModel",
    "BarrelModel",
    "Dga",
]


class PoolClass(enum.Enum):
    """Query-pool models (horizontal axis of the Figure-3 taxonomy)."""

    DRAIN_REPLENISH = "drain-and-replenish"
    SLIDING_WINDOW = "sliding-window"
    MULTIPLE_MIXTURE = "multiple-mixture"


class BarrelClass(enum.Enum):
    """Query-barrel models (vertical axis of the Figure-3 taxonomy).

    Ordered from determinism to randomness, as in the paper: uniform,
    randomcut, permutation, sampling.
    """

    UNIFORM = "uniform"
    RANDOMCUT = "randomcut"
    PERMUTATION = "permutation"
    SAMPLING = "sampling"


@dataclass(frozen=True)
class DgaParameters:
    """The ``θ``/``δ`` parameters of §III–IV.

    Attributes:
        n_registered: ``θ∃`` — domains registered as C2 per day.
        n_nxd: ``θ∅`` — unregistered (NXDOMAIN) domains per day.
        barrel_size: ``θq`` — maximum lookups per activation.
        query_interval: ``δi`` — seconds between consecutive lookups of
            one activation.
        fixed_interval: whether ``δi`` is a hard constant (newGoZ-style
            1 s trains) or merely the mean of a jittered gap (families the
            paper lists with δi = "none", e.g. Ramnit, Qakbot).
    """

    n_registered: int
    n_nxd: int
    barrel_size: int
    query_interval: float
    fixed_interval: bool = True

    def __post_init__(self) -> None:
        if self.n_registered < 0:
            raise ValueError(f"θ∃ must be >= 0, got {self.n_registered}")
        if self.n_nxd < 1:
            raise ValueError(f"θ∅ must be >= 1, got {self.n_nxd}")
        if not 1 <= self.barrel_size <= self.pool_size:
            raise ValueError(
                f"θq must be in [1, θ∃+θ∅={self.pool_size}], got {self.barrel_size}"
            )
        if self.query_interval <= 0:
            raise ValueError(f"δi must be positive, got {self.query_interval}")

    @property
    def pool_size(self) -> int:
        """``θ∃ + θ∅`` — total domains in the daily query pool."""
        return self.n_registered + self.n_nxd


class PoolModel(ABC):
    """Produces the ordered query pool for a calendar day."""

    pool_class: PoolClass

    @abstractmethod
    def pool_for(self, day: _dt.date) -> list[str]:
        """Return the ordered query pool for ``day``.

        The order is the DGA's canonical generation order; barrel models
        that rely on a global sequential order (uniform, randomcut) use it
        directly.
        """

    @abstractmethod
    def useful_pool_for(self, day: _dt.date) -> list[str]:
        """Return the subset of :meth:`pool_for` eligible for C2 registration.

        Identical to the full pool except for the multiple-mixture model,
        where only one of the interleaved DGA instances generates domains
        the botmaster will ever register.
        """


class BarrelModel(ABC):
    """Selects the ordered query barrel from a daily pool."""

    barrel_class: BarrelClass

    @abstractmethod
    def barrel(self, pool: Sequence[str], barrel_size: int, rng: Lcg) -> list[str]:
        """Return the ordered domains one activation will attempt.

        ``rng`` is the per-activation generator: two activations of the
        same bot on the same day may legitimately draw different barrels
        (sampling, randomcut, permutation).
        """


class Dga:
    """A complete domain-generation algorithm.

    Composes a :class:`PoolModel`, a :class:`BarrelModel`, and the
    :class:`DgaParameters` into the interface both the botnet simulator
    and BotMeter's matcher consume.

    Everything is deterministic given ``(name, seed, day)``: the daily
    pool, the registered C2 subset, and — given an activation RNG — the
    barrel.  This mirrors the paper's observation that "because the
    botmaster and bots share the same DGA, this query pool is known to
    both of them".
    """

    def __init__(
        self,
        name: str,
        params: DgaParameters,
        pool_model: PoolModel,
        barrel_model: BarrelModel,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.params = params
        self.pool_model = pool_model
        self.barrel_model = barrel_model
        self.seed = seed

    # -- pool side ---------------------------------------------------------

    def pool(self, day: _dt.date) -> list[str]:
        """Ordered query pool for ``day`` (``θ∃ + θ∅`` domains)."""
        return self.pool_model.pool_for(day)

    def registered(self, day: _dt.date) -> set[str]:
        """The ``θ∃`` domains the botmaster registers for ``day``.

        Chosen pseudo-randomly (but deterministically per day) from the
        useful pool, so valid domains fall at arbitrary positions of the
        generation order — this is what partitions the AR circle into
        arcs (Figure 5).
        """
        if self.params.n_registered == 0:
            return set()
        useful = self.pool_model.useful_pool_for(day)
        rng = Lcg(date_seed(day, self.seed ^ 0xC2C2C2C2))
        chosen: set[str] = set()
        # Rejection-sample distinct indices; θ∃ ≪ pool size so this
        # terminates almost immediately.
        while len(chosen) < min(self.params.n_registered, len(useful)):
            chosen.add(useful[rng.next_below(len(useful))])
        return chosen

    def nxdomains(self, day: _dt.date) -> list[str]:
        """The pool minus the registered domains, in generation order."""
        valid = self.registered(day)
        return [d for d in self.pool(day) if d not in valid]

    # -- bot side ----------------------------------------------------------

    def barrel(self, day: _dt.date, rng: Lcg) -> list[str]:
        """The ordered query barrel for one activation on ``day``."""
        pool = self.pool(day)
        return self.barrel_model.barrel(pool, self.params.barrel_size, rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dga({self.name!r}, pool={self.pool_model.pool_class.value}, "
            f"barrel={self.barrel_model.barrel_class.value}, "
            f"θ∃={self.params.n_registered}, θ∅={self.params.n_nxd}, "
            f"θq={self.params.barrel_size})"
        )
