"""Query-barrel models (§III-B): uniform, sampling, randomcut, and
permutation.

A barrel model answers one question: given today's pool, which domains —
and in what order — will a single activation attempt?  The stop-on-first-
valid-domain behaviour lives in the bot simulator, not here; barrels are
the *planned* query sequence of up to ``θq`` domains.
"""

from __future__ import annotations

from typing import Sequence

from .base import BarrelClass, BarrelModel
from .wordgen import Lcg

__all__ = [
    "UniformBarrel",
    "SamplingBarrel",
    "RandomCutBarrel",
    "PermutationBarrel",
]


def _check_barrel_size(pool: Sequence[str], barrel_size: int) -> None:
    if barrel_size < 1:
        raise ValueError(f"barrel size must be positive, got {barrel_size}")
    if barrel_size > len(pool):
        raise ValueError(
            f"barrel size {barrel_size} exceeds pool size {len(pool)}"
        )


class UniformBarrel(BarrelModel):
    """Query the pool in generation order (Murofet, Srizbi, Torpig).

    Every bot produces the *same* barrel each day — the property that
    makes AU invisible behind a shared negative cache and motivates the
    Poisson estimator.
    """

    barrel_class = BarrelClass.UNIFORM

    def barrel(self, pool: Sequence[str], barrel_size: int, rng: Lcg) -> list[str]:
        _check_barrel_size(pool, barrel_size)
        return list(pool[:barrel_size])


class SamplingBarrel(BarrelModel):
    """Query a random ``θq``-subset of the pool (Conficker.C).

    Sampling is without replacement via a partial Fisher–Yates shuffle,
    so the barrel order is itself uniformly random.
    """

    barrel_class = BarrelClass.SAMPLING

    def barrel(self, pool: Sequence[str], barrel_size: int, rng: Lcg) -> list[str]:
        _check_barrel_size(pool, barrel_size)
        indices = list(range(len(pool)))
        for i in range(barrel_size):
            j = i + rng.next_below(len(indices) - i)
            indices[i], indices[j] = indices[j], indices[i]
        return [pool[i] for i in indices[:barrel_size]]


class RandomCutBarrel(BarrelModel):
    """Query ``θq`` consecutive domains starting at a random position of
    the global order, wrapping modularly (newGoZ).

    This is the model behind the Bernoulli estimator's circle-and-arcs
    geometry (Figure 5).
    """

    barrel_class = BarrelClass.RANDOMCUT

    def barrel(self, pool: Sequence[str], barrel_size: int, rng: Lcg) -> list[str]:
        _check_barrel_size(pool, barrel_size)
        start = rng.next_below(len(pool))
        n = len(pool)
        return [pool[(start + k) % n] for k in range(barrel_size)]


class PermutationBarrel(BarrelModel):
    """Query the whole pool in a freshly shuffled order (Necurs).

    ``θq`` normally equals the pool size; smaller values yield a random
    prefix of a full permutation, which coincides with sampling but keeps
    the family's intent (exhaustive coverage in random order) explicit.
    """

    barrel_class = BarrelClass.PERMUTATION

    def barrel(self, pool: Sequence[str], barrel_size: int, rng: Lcg) -> list[str]:
        _check_barrel_size(pool, barrel_size)
        order = list(pool)
        for i in range(len(order) - 1, 0, -1):
            j = rng.next_below(i + 1)
            order[i], order[j] = order[j], order[i]
        return order[:barrel_size]
