"""Query-pool models (§III-A): drain-and-replenish, sliding-window, and
multiple-mixture.

Each model turns ``(family seed, calendar day)`` into an ordered list of
domain names.  Daily batches are memoised because the simulator and the
matcher both enumerate the same pools repeatedly.
"""

from __future__ import annotations

import datetime as _dt
from functools import lru_cache

from .base import PoolClass, PoolModel
from .wordgen import Lcg, LabelSpec, date_seed

__all__ = [
    "DrainReplenishPool",
    "SlidingWindowPool",
    "MultipleMixturePool",
]


class _BatchGenerator:
    """Generates the deterministic daily batch of domains for one DGA
    instance.

    A batch is the set of fresh domains generated on a given day; pool
    models differ in how batches are combined into the query pool.
    """

    def __init__(self, seed: int, batch_size: int, label_spec: LabelSpec, tld: str) -> None:
        if batch_size < 1:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        self._seed = seed
        self._batch_size = batch_size
        self._label_spec = label_spec
        self._tld = tld
        self._cache: dict[_dt.date, list[str]] = {}

    def batch_for(self, day: _dt.date) -> list[str]:
        cached = self._cache.get(day)
        if cached is not None:
            return cached
        rng = Lcg(date_seed(day, self._seed))
        seen: set[str] = set()
        batch: list[str] = []
        # Collisions between generated labels are astronomically rare but
        # would silently shrink the pool, so regenerate on duplicates.
        while len(batch) < self._batch_size:
            domain = f"{self._label_spec.draw(rng)}.{self._tld}"
            if domain not in seen:
                seen.add(domain)
                batch.append(domain)
        if len(self._cache) > 512:
            self._cache.clear()
        self._cache[day] = batch
        return batch


class DrainReplenishPool(PoolModel):
    """The entire pool is regenerated on a regular basis (Murofet, Srizbi,
    Conficker, GameoverZeus, ...).

    ``period_days`` > 1 models families such as Necurs whose pool rolls
    over every few days rather than daily: all days inside one period map
    to the same pool.
    """

    pool_class = PoolClass.DRAIN_REPLENISH

    def __init__(
        self,
        seed: int,
        pool_size: int,
        label_spec: LabelSpec | None = None,
        tld: str = "com",
        period_days: int = 1,
    ) -> None:
        if period_days < 1:
            raise ValueError(f"period_days must be >= 1, got {period_days}")
        self._gen = _BatchGenerator(seed, pool_size, label_spec or LabelSpec(), tld)
        self._period_days = period_days

    def _anchor(self, day: _dt.date) -> _dt.date:
        ordinal = day.toordinal()
        return _dt.date.fromordinal(ordinal - ordinal % self._period_days)

    def pool_for(self, day: _dt.date) -> list[str]:
        return list(self._gen.batch_for(self._anchor(day)))

    def useful_pool_for(self, day: _dt.date) -> list[str]:
        return self.pool_for(day)


class SlidingWindowPool(PoolModel):
    """A window of daily batches slides over time (Ranbyus, PushDo).

    ``days_back``/``days_forward`` bound the window relative to the
    current day; e.g. PushDo keeps −30..+15 days of 30 domains per day for
    a pool of 1,380 domains, Ranbyus keeps the past 30 days of 40 domains
    plus today's for a pool of 1,240.
    """

    pool_class = PoolClass.SLIDING_WINDOW

    def __init__(
        self,
        seed: int,
        daily_batch: int,
        days_back: int,
        days_forward: int = 0,
        label_spec: LabelSpec | None = None,
        tld: str = "com",
    ) -> None:
        if days_back < 0 or days_forward < 0:
            raise ValueError("window extents must be non-negative")
        self._gen = _BatchGenerator(seed, daily_batch, label_spec or LabelSpec(), tld)
        self._days_back = days_back
        self._days_forward = days_forward

    @property
    def window_days(self) -> int:
        """Number of daily batches in the pool."""
        return self._days_back + self._days_forward + 1

    def pool_for(self, day: _dt.date) -> list[str]:
        pool: list[str] = []
        for offset in range(-self._days_back, self._days_forward + 1):
            pool.extend(self._gen.batch_for(day + _dt.timedelta(days=offset)))
        return pool

    def useful_pool_for(self, day: _dt.date) -> list[str]:
        return self.pool_for(day)


class MultipleMixturePool(PoolModel):
    """Several identical DGA instances with different seeds interleaved
    (Pykspa): one instance generates useful domains, the others noise.

    Only the useful instance's domains are eligible for registration, but
    bots query the interleaved mixture, inflating the NXD stream seen by
    defenders.
    """

    pool_class = PoolClass.MULTIPLE_MIXTURE

    def __init__(
        self,
        seed: int,
        useful_size: int,
        noise_sizes: tuple[int, ...],
        label_spec: LabelSpec | None = None,
        tld: str = "com",
    ) -> None:
        if not noise_sizes:
            raise ValueError("multiple-mixture pool needs at least one noise instance")
        spec = label_spec or LabelSpec()
        self._useful = _BatchGenerator(seed, useful_size, spec, tld)
        self._noise = [
            _BatchGenerator(seed ^ (0xA5A5A5A5 + 0x1000003 * (i + 1)), size, spec, tld)
            for i, size in enumerate(noise_sizes)
        ]

    def pool_for(self, day: _dt.date) -> list[str]:
        streams = [self._useful.batch_for(day)] + [g.batch_for(day) for g in self._noise]
        pool: list[str] = []
        # Round-robin interleave so useful and noisy domains alternate in
        # the generation order, as observed for Pykspa.
        cursors = [0] * len(streams)
        remaining = sum(len(s) for s in streams)
        while remaining:
            for i, stream in enumerate(streams):
                if cursors[i] < len(stream):
                    pool.append(stream[cursors[i]])
                    cursors[i] += 1
                    remaining -= 1
        return pool

    def useful_pool_for(self, day: _dt.date) -> list[str]:
        return list(self._useful.batch_for(day))
