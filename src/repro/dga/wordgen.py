"""Deterministic pseudo-random domain-label generation.

Real DGA malware derives each domain from a seed (often the current date)
through a small arithmetic core: a linear congruential generator, a
multiply-xor hash chain, or repeated hashing of the seed.  This module
provides those cores so every DGA family in :mod:`repro.dga.families` can
generate its daily query pool deterministically from ``(seed, date)`` —
exactly the property the paper relies on when it queries DGArchive for the
"pool dataset".

All generators here are pure functions of their inputs: the same
``(seed, date, index)`` always yields the same domain, on any platform.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

__all__ = [
    "Lcg",
    "XorShift64",
    "date_seed",
    "label_from_stream",
    "hex_label_from_stream",
    "consonant_vowel_label",
    "COMMON_TLDS",
]

#: TLD sets used by the synthetic DGA families.  The exact strings are
#: irrelevant to the estimators; they only need to be syntactically valid
#: and stable.
COMMON_TLDS = ("com", "net", "org", "biz", "info", "ru", "cn", "ws")

_ALPHA = "abcdefghijklmnopqrstuvwxyz"
_ALNUM = "abcdefghijklmnopqrstuvwxyz0123456789"
_VOWELS = "aeiou"
_CONSONANTS = "bcdfghjklmnpqrstvwxyz"

_MASK64 = (1 << 64) - 1


class Lcg:
    """64-bit linear congruential generator (Knuth MMIX constants).

    A minimal, dependency-free PRNG with a fully specified state-update
    rule, so DGA pools are reproducible independent of Python's
    ``random`` module internals.
    """

    _A = 6364136223846793005
    _C = 1442695040888963407

    def __init__(self, seed: int) -> None:
        self._state = (seed ^ 0x9E3779B97F4A7C15) & _MASK64
        # Warm up so nearby seeds diverge quickly.
        for _ in range(3):
            self.next_u64()

    def next_u64(self) -> int:
        """Advance the state and return the next 64-bit value."""
        self._state = (self._state * self._A + self._C) & _MASK64
        # Output tempering: xorshift the raw state to decorrelate low bits.
        x = self._state
        x ^= x >> 33
        x = (x * 0xFF51AFD7ED558CCD) & _MASK64
        x ^= x >> 29
        return x

    def next_below(self, bound: int) -> int:
        """Return an integer uniform in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound


class XorShift64:
    """Marsaglia xorshift64* generator — a second independent PRNG core.

    Some families use this instead of :class:`Lcg` so that two DGAs with
    the same numeric seed still produce unrelated pools.
    """

    def __init__(self, seed: int) -> None:
        self._state = (seed | 1) & _MASK64

    def next_u64(self) -> int:
        """Advance the state and return the next 64-bit value."""
        x = self._state
        x ^= (x << 13) & _MASK64
        x ^= x >> 7
        x ^= (x << 17) & _MASK64
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def next_below(self, bound: int) -> int:
        """Return an integer uniform in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound


def date_seed(day: _dt.date, family_seed: int) -> int:
    """Fold a calendar date and a per-family seed into one 64-bit seed.

    Mirrors the common malware idiom of seeding the DGA with
    ``(year, month, day)``; the family seed plays the role of the
    hard-coded campaign constant found in real samples.
    """
    packed = (day.year << 16) | (day.month << 8) | day.day
    return ((packed * 0x5DEECE66D) ^ (family_seed * 0x9E3779B1)) & _MASK64


def label_from_stream(rng: Lcg | XorShift64, min_len: int, max_len: int) -> str:
    """Draw a lowercase alphabetic label with length in ``[min_len, max_len]``."""
    if not 1 <= min_len <= max_len:
        raise ValueError(f"invalid label length range [{min_len}, {max_len}]")
    length = min_len + rng.next_below(max_len - min_len + 1)
    return "".join(_ALPHA[rng.next_below(26)] for _ in range(length))


def hex_label_from_stream(rng: Lcg | XorShift64, length: int) -> str:
    """Draw a fixed-length hexadecimal label (newGoZ-style)."""
    if length < 1:
        raise ValueError(f"label length must be positive, got {length}")
    return "".join("0123456789abcdef"[rng.next_below(16)] for _ in range(length))


def consonant_vowel_label(rng: Lcg | XorShift64, syllables: int) -> str:
    """Draw a pronounceable consonant-vowel label (Pykspa-style)."""
    if syllables < 1:
        raise ValueError(f"syllable count must be positive, got {syllables}")
    parts = []
    for _ in range(syllables):
        parts.append(_CONSONANTS[rng.next_below(len(_CONSONANTS))])
        parts.append(_VOWELS[rng.next_below(len(_VOWELS))])
    return "".join(parts)


@dataclass(frozen=True)
class LabelSpec:
    """Shape of the labels a family generates.

    ``style`` selects the character model: ``"alpha"`` (uniform letters),
    ``"hex"`` (fixed-length hexadecimal) or ``"cv"`` (consonant-vowel
    syllables).  ``min_len``/``max_len`` bound alpha labels; ``length``
    fixes hex labels; ``syllables`` fixes cv labels.
    """

    style: str = "alpha"
    min_len: int = 8
    max_len: int = 16
    length: int = 32
    syllables: int = 4

    def draw(self, rng: Lcg | XorShift64) -> str:
        """Draw one label of this spec from ``rng``."""
        if self.style == "alpha":
            return label_from_stream(rng, self.min_len, self.max_len)
        if self.style == "hex":
            return hex_label_from_stream(rng, self.length)
        if self.style == "cv":
            return consonant_vowel_label(rng, self.syllables)
        raise ValueError(f"unknown label style: {self.style!r}")
