"""Adversarial DGA models (paper §VII, future-work direction 3).

The paper closes by asking, from the attacker's perspective, how a DGA
could "evade effective population estimation".  This module implements
one concrete answer and makes it measurable:

**Coordinated-cut evasion.**  BotMeter's AR estimators infer the
population from how many independent random stretches cover the circle.
A botmaster can poison that signal by *coordinating* the randomcut
starts: each bot derives its start from a shared day-dependent secret,
choosing among only ``n_cuts`` rendezvous positions instead of the whole
circle.  Any population ``N ≥ n_cuts`` then produces the same
distinct-NXD pattern as ``≈ n_cuts`` bots, so coverage-based estimators
(MB) report ``≈ n_cuts`` no matter how large the botnet grows.  The cost
to the attacker is the same trade-off the taxonomy describes: less
randomness means the defender can blacklist the few rendezvous stretches
more easily.

The renewal estimator (MR) partially resists the attack — repeat
forwarded lookups per TTL window still scale with the activation rate —
which `benchmarks/test_adversarial_evasion.py` quantifies.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from .barrels import RandomCutBarrel
from .base import BarrelClass, BarrelModel, Dga, DgaParameters
from .pools import DrainReplenishPool
from .wordgen import LabelSpec, Lcg

__all__ = ["CoordinatedCutBarrel", "evasive_goz"]


class CoordinatedCutBarrel(BarrelModel):
    """A randomcut barrel whose start is drawn from ``n_cuts`` shared
    rendezvous positions.

    The rendezvous positions are derived from the day's pool content and
    a shared secret, so every bot computes the same candidate set
    without any communication — exactly like the pool itself.
    """

    barrel_class = BarrelClass.RANDOMCUT

    def __init__(self, n_cuts: int, secret: int = 0) -> None:
        if n_cuts < 1:
            raise ValueError(f"n_cuts must be >= 1, got {n_cuts}")
        self._n_cuts = n_cuts
        self._secret = secret

    @property
    def n_cuts(self) -> int:
        return self._n_cuts

    def rendezvous_starts(self, pool: Sequence[str]) -> list[int]:
        """The day's shared start positions, derived from the pool."""
        digest = hashlib.sha256(
            f"{pool[0]}|{len(pool)}|{self._secret}".encode()
        ).digest()
        rng = Lcg(int.from_bytes(digest[:8], "big"))
        return [rng.next_below(len(pool)) for _ in range(self._n_cuts)]

    def barrel(self, pool: Sequence[str], barrel_size: int, rng: Lcg) -> list[str]:
        if not 1 <= barrel_size <= len(pool):
            raise ValueError(
                f"barrel size {barrel_size} invalid for pool of {len(pool)}"
            )
        starts = self.rendezvous_starts(pool)
        start = starts[rng.next_below(len(starts))]
        n = len(pool)
        return [pool[(start + k) % n] for k in range(barrel_size)]


def evasive_goz(seed: int = 0, n_cuts: int = 8) -> Dga:
    """A newGoZ variant using coordinated cuts to evade MB.

    Identical Table-I parameters to newGoZ; only the barrel coordination
    differs.
    """
    params = DgaParameters(n_registered=5, n_nxd=9995, barrel_size=500, query_interval=1.0)
    pool = DrainReplenishPool(
        seed ^ 0x4556, params.pool_size, LabelSpec("hex", length=28), tld="net"
    )
    return Dga(
        "evasive_goz",
        params,
        pool,
        CoordinatedCutBarrel(n_cuts=n_cuts, secret=seed),
        seed,
    )
