"""DGA substrate: query-pool models, query-barrel models, and concrete
seeded DGA families (§III of the paper)."""

from .adversarial import CoordinatedCutBarrel, evasive_goz
from .archive import ArchiveHit, DgaArchive
from .barrels import (
    PermutationBarrel,
    RandomCutBarrel,
    SamplingBarrel,
    UniformBarrel,
)
from .base import BarrelClass, Dga, DgaParameters, PoolClass
from .families import FAMILY_BUILDERS, family_names, make_family
from .pools import DrainReplenishPool, MultipleMixturePool, SlidingWindowPool
from .wordgen import LabelSpec, Lcg, XorShift64, date_seed

__all__ = [
    "CoordinatedCutBarrel",
    "evasive_goz",
    "ArchiveHit",
    "DgaArchive",
    "BarrelClass",
    "Dga",
    "DgaParameters",
    "PoolClass",
    "DrainReplenishPool",
    "SlidingWindowPool",
    "MultipleMixturePool",
    "UniformBarrel",
    "SamplingBarrel",
    "RandomCutBarrel",
    "PermutationBarrel",
    "LabelSpec",
    "Lcg",
    "XorShift64",
    "date_seed",
    "FAMILY_BUILDERS",
    "make_family",
    "family_names",
]
