"""A local DGArchive-style lookup service.

The paper builds its "pool dataset" by querying DGArchive — a service
that, given a domain, answers which DGA family generated it and for
which dates, and can enumerate each family's daily pools.  This module
provides the same capability over this library's deterministic families:

* :meth:`DgaArchive.build` pre-generates every pool over a date range
  and indexes domain → (family, date) hits;
* :meth:`DgaArchive.lookup` answers point queries (the DGArchive API);
* :meth:`DgaArchive.detection_windows` materialises per-day matcher
  windows for BotMeter;
* :meth:`DgaArchive.collisions` finds pool domains that coincide with a
  benign set (the paper's "collision cases", §II-B).

Because every family is a pure function of ``(name, seed, date)``, the
archive serialises to a tiny manifest — families and the date range —
and rebuilds its index on load.
"""

from __future__ import annotations

import datetime as _dt
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .base import Dga
from .families import make_family

__all__ = ["ArchiveHit", "DgaArchive"]


@dataclass(frozen=True)
class ArchiveHit:
    """One lookup answer: the family that generated a domain, on a date."""

    family: str
    date: _dt.date


class DgaArchive:
    """Domain → (family, date) index over deterministic DGA families."""

    def __init__(self) -> None:
        self._dgas: dict[str, Dga] = {}
        self._seeds: dict[str, int] = {}
        self._index: dict[str, list[ArchiveHit]] = {}
        self._start: _dt.date | None = None
        self._end: _dt.date | None = None

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        families: Iterable[tuple[str, int]],
        start: _dt.date,
        end: _dt.date,
    ) -> "DgaArchive":
        """Index every listed ``(family, seed)`` over ``[start, end]``."""
        if end < start:
            raise ValueError("end date precedes start date")
        archive = cls()
        archive._start, archive._end = start, end
        for name, seed in families:
            if name in archive._dgas:
                raise ValueError(f"family {name!r} listed twice")
            archive._dgas[name] = make_family(name, seed)
            archive._seeds[name] = seed
        day = start
        while day <= end:
            for name, dga in archive._dgas.items():
                for domain in dga.pool(day):
                    archive._index.setdefault(domain, []).append(
                        ArchiveHit(name, day)
                    )
            day += _dt.timedelta(days=1)
        return archive

    # -- queries --------------------------------------------------------------

    @property
    def date_range(self) -> tuple[_dt.date, _dt.date]:
        if self._start is None or self._end is None:
            raise RuntimeError("archive is empty")
        return self._start, self._end

    def families(self) -> list[str]:
        """Archived family names, sorted."""
        return sorted(self._dgas)

    def __len__(self) -> int:
        """Number of distinct indexed domains."""
        return len(self._index)

    def lookup(self, domain: str) -> list[ArchiveHit]:
        """All (family, date) attributions of ``domain`` (empty if benign)."""
        return list(self._index.get(domain, ()))

    def is_dga_domain(self, domain: str) -> bool:
        """Whether any archived family generated ``domain``."""
        return domain in self._index

    def pool(self, family: str, date: _dt.date) -> list[str]:
        """A family's full pool on a date (regenerated, not stored)."""
        return self._dga(family).pool(date)

    def nxdomains(self, family: str, date: _dt.date) -> list[str]:
        """A family's NXDs (pool minus registered) on a date."""
        return self._dga(family).nxdomains(date)

    def dga(self, family: str) -> Dga:
        """The family's DGA instance (for BotMeter construction)."""
        return self._dga(family)

    def _dga(self, family: str) -> Dga:
        try:
            return self._dgas[family]
        except KeyError:
            known = ", ".join(self.families())
            raise KeyError(f"family {family!r} not archived; have: {known}") from None

    def detection_windows(
        self, family: str, timeline, day_indices: Iterable[int]
    ) -> dict[int, frozenset[str]]:
        """Per-day-index NXD windows for the matcher (perfect coverage)."""
        dga = self._dga(family)
        return {
            day: frozenset(dga.nxdomains(timeline.date_for_day(day)))
            for day in day_indices
        }

    def collisions(self, benign_domains: Iterable[str]) -> dict[str, list[ArchiveHit]]:
        """Benign domains that collide with generated pools (§II-B)."""
        return {
            domain: self.lookup(domain)
            for domain in benign_domains
            if self.is_dga_domain(domain)
        }

    def summary(self) -> dict[str, int]:
        """Distinct indexed domains per family."""
        counts: dict[str, int] = {name: 0 for name in self._dgas}
        for hits in self._index.values():
            for family in {hit.family for hit in hits}:
                counts[family] += 1
        return counts

    # -- persistence ------------------------------------------------------------

    def save_manifest(self, path: str | Path) -> None:
        """Persist the archive as a manifest (families + date range).

        The domain index is *not* stored — pools are deterministic, so
        :meth:`load_manifest` rebuilds it exactly.
        """
        start, end = self.date_range
        manifest = {
            "start": start.isoformat(),
            "end": end.isoformat(),
            "families": [
                {"name": name, "seed": self._seeds[name]}
                for name in self.families()
            ],
        }
        Path(path).write_text(json.dumps(manifest, indent=2))

    @classmethod
    def load_manifest(cls, path: str | Path) -> "DgaArchive":
        manifest = json.loads(Path(path).read_text())
        return cls.build(
            [(f["name"], f["seed"]) for f in manifest["families"]],
            _dt.date.fromisoformat(manifest["start"]),
            _dt.date.fromisoformat(manifest["end"]),
        )
