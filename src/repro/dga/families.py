"""Concrete DGA families.

Each builder returns a fully wired :class:`~repro.dga.base.Dga` whose
parameters follow the paper where it gives them (Table I, §III, §V-B) and
published malware analyses otherwise.  The pseudo-random cores are our own
(see :mod:`repro.dga.wordgen`) — only the *DNS-visible* behaviour (pool
size, barrel model, query interval) matters to BotMeter, so the exact
label arithmetic of the real samples need not be byte-identical.

The four synthetic evaluation prototypes of Table I:

========  =====  ======  ====  ====  ======
model     proto  θ∅      θ∃    θq    δi
========  =====  ======  ====  ====  ======
AU        Murofet   798     2   798  500 ms
AS        Conficker.C 49995  5   500    1 s
AR        newGoZ   9995     5   500    1 s
AP        Necurs   2046     2  2046  500 ms
========  =====  ======  ====  ====  ======
"""

from __future__ import annotations

from typing import Callable

from .barrels import (
    PermutationBarrel,
    RandomCutBarrel,
    SamplingBarrel,
    UniformBarrel,
)
from .base import Dga, DgaParameters
from .pools import DrainReplenishPool, MultipleMixturePool, SlidingWindowPool
from .wordgen import LabelSpec

__all__ = [
    "murofet",
    "srizbi",
    "torpig",
    "conficker_c",
    "new_goz",
    "necurs",
    "ranbyus",
    "pushdo",
    "pykspa",
    "ramnit",
    "qakbot",
    "FAMILY_BUILDERS",
    "make_family",
    "family_names",
]


def murofet(seed: int = 0) -> Dga:
    """Murofet — AU prototype: uniform barrel over a daily pool of 800."""
    params = DgaParameters(n_registered=2, n_nxd=798, barrel_size=798, query_interval=0.5)
    pool = DrainReplenishPool(seed ^ 0x4D55, params.pool_size, LabelSpec("alpha", 12, 20), tld="biz")
    return Dga("murofet", params, pool, UniformBarrel(), seed)


def srizbi(seed: int = 0) -> Dga:
    """Srizbi — AU: short 4-letter labels, small daily pool, in-order queries."""
    params = DgaParameters(n_registered=2, n_nxd=498, barrel_size=498, query_interval=0.5)
    pool = DrainReplenishPool(seed ^ 0x5352, params.pool_size, LabelSpec("alpha", 4, 4), tld="com")
    return Dga("srizbi", params, pool, UniformBarrel(), seed)


def torpig(seed: int = 0) -> Dga:
    """Torpig — AU: a handful of date-derived domains queried in order."""
    params = DgaParameters(n_registered=1, n_nxd=17, barrel_size=18, query_interval=0.5)
    pool = DrainReplenishPool(seed ^ 0x544F, params.pool_size, LabelSpec("cv", syllables=4), tld="com")
    return Dga("torpig", params, pool, UniformBarrel(), seed)


def conficker_c(seed: int = 0) -> Dga:
    """Conficker.C — AS prototype: 50K daily pool, random 500-sample barrel."""
    params = DgaParameters(n_registered=5, n_nxd=49995, barrel_size=500, query_interval=1.0)
    pool = DrainReplenishPool(seed ^ 0x434F, params.pool_size, LabelSpec("alpha", 4, 10), tld="ws")
    return Dga("conficker_c", params, pool, SamplingBarrel(), seed)


def new_goz(seed: int = 0) -> Dga:
    """newGoZ — AR prototype: 10K pool, random 500-long consecutive cut."""
    params = DgaParameters(n_registered=5, n_nxd=9995, barrel_size=500, query_interval=1.0)
    pool = DrainReplenishPool(seed ^ 0x475A, params.pool_size, LabelSpec("hex", length=28), tld="net")
    return Dga("new_goz", params, pool, RandomCutBarrel(), seed)


def necurs(seed: int = 0) -> Dga:
    """Necurs — AP prototype: 2,048-domain pool rolled every 4 days, fully
    permuted query order each activation."""
    params = DgaParameters(n_registered=2, n_nxd=2046, barrel_size=2046, query_interval=0.5)
    pool = DrainReplenishPool(
        seed ^ 0x4E45, params.pool_size, LabelSpec("alpha", 7, 21), tld="com", period_days=4
    )
    return Dga("necurs", params, pool, PermutationBarrel(), seed)


def ranbyus(seed: int = 0) -> Dga:
    """Ranbyus — sliding-window pool: 40 fresh domains/day over the past
    30 days (1,240 domains), queried in order."""
    params = DgaParameters(n_registered=3, n_nxd=1237, barrel_size=1240, query_interval=0.5)
    pool = SlidingWindowPool(
        seed ^ 0x5241, daily_batch=40, days_back=30, days_forward=0,
        label_spec=LabelSpec("alpha", 14, 14), tld="org",
    )
    return Dga("ranbyus", params, pool, UniformBarrel(), seed)


def pushdo(seed: int = 0) -> Dga:
    """PushDo — sliding-window pool of −30..+15 days × 30 domains/day
    (1,380 domains), queried in order."""
    params = DgaParameters(n_registered=3, n_nxd=1377, barrel_size=1380, query_interval=0.5)
    pool = SlidingWindowPool(
        seed ^ 0x5055, daily_batch=30, days_back=30, days_forward=15,
        label_spec=LabelSpec("alpha", 7, 12), tld="com",
    )
    return Dga("pushdo", params, pool, UniformBarrel(), seed)


def pykspa(seed: int = 0) -> Dga:
    """Pykspa — multiple-mixture pool: a 200-domain useful instance
    interleaved with a 16K-domain noise instance.

    The paper does not pin Pykspa's barrel row in Figure 3; we model it
    with a sampling barrel (bots try a random subset of the mixture),
    which matches its observed scattered NXD behaviour.
    """
    params = DgaParameters(n_registered=2, n_nxd=16198, barrel_size=400, query_interval=0.5)
    pool = MultipleMixturePool(
        seed ^ 0x5059, useful_size=200, noise_sizes=(16000,),
        label_spec=LabelSpec("cv", syllables=5), tld="info",
    )
    return Dga("pykspa", params, pool, SamplingBarrel(), seed)


def ramnit(seed: int = 0) -> Dga:
    """Ramnit — AU family evaluated in §V-B; no fixed query interval
    (Table II lists δi = none), so lookup gaps are jittered around 1 s."""
    params = DgaParameters(
        n_registered=2, n_nxd=298, barrel_size=300, query_interval=1.0, fixed_interval=False
    )
    pool = DrainReplenishPool(seed ^ 0x524D, params.pool_size, LabelSpec("alpha", 8, 19), tld="com")
    return Dga("ramnit", params, pool, UniformBarrel(), seed)


def qakbot(seed: int = 0) -> Dga:
    """Qakbot — AU family evaluated in §V-B; jittered intervals, daily
    in-order pool of 256 domains."""
    params = DgaParameters(
        n_registered=2, n_nxd=254, barrel_size=256, query_interval=1.0, fixed_interval=False
    )
    pool = DrainReplenishPool(seed ^ 0x5141, params.pool_size, LabelSpec("alpha", 8, 25), tld="net")
    return Dga("qakbot", params, pool, UniformBarrel(), seed)


def _evasive_goz(seed: int = 0) -> Dga:
    # Imported lazily to avoid a circular import at module load.
    from .adversarial import evasive_goz

    return evasive_goz(seed)


FAMILY_BUILDERS: dict[str, Callable[[int], Dga]] = {
    "murofet": murofet,
    "srizbi": srizbi,
    "torpig": torpig,
    "conficker_c": conficker_c,
    "new_goz": new_goz,
    "necurs": necurs,
    "ranbyus": ranbyus,
    "pushdo": pushdo,
    "pykspa": pykspa,
    "ramnit": ramnit,
    "qakbot": qakbot,
    "evasive_goz": _evasive_goz,
}


def make_family(name: str, seed: int = 0) -> Dga:
    """Instantiate a named DGA family.

    Raises:
        KeyError: if ``name`` is not a known family.
    """
    try:
        builder = FAMILY_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(FAMILY_BUILDERS))
        raise KeyError(f"unknown DGA family {name!r}; known families: {known}") from None
    return builder(seed)


def family_names() -> list[str]:
    """All registered family names, sorted."""
    return sorted(FAMILY_BUILDERS)
