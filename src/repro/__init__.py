"""BotMeter reproduction: charting DGA-botnet landscapes in large
networks (Wang et al., ICDCS 2016).

Public API quick map:

* :mod:`repro.core` — the BotMeter tool: matcher, Timing/Poisson/
  Bernoulli estimators, taxonomy, landscape pipeline.
* :mod:`repro.dga` — DGA substrate: pool/barrel models and families.
* :mod:`repro.dns` — hierarchical caching-and-forwarding DNS substrate.
* :mod:`repro.sim` — botnet + network traffic simulation.
* :mod:`repro.detect` — D3 detection-window modelling and a lexical
  classifier.
* :mod:`repro.enterprise` — synthetic year-long enterprise trace
  (real-data substitute).
* :mod:`repro.eval` — metrics and the paper's experiment harnesses.
"""

from .core import (
    BernoulliEstimator,
    BotMeter,
    Landscape,
    PoissonEstimator,
    TimingEstimator,
    make_estimator,
)
from .dga import Dga, DgaParameters, make_family
from .sim import SimConfig, simulate
from .timebase import SECONDS_PER_DAY, Timeline

__version__ = "1.0.0"

__all__ = [
    "BernoulliEstimator",
    "BotMeter",
    "Landscape",
    "PoissonEstimator",
    "TimingEstimator",
    "make_estimator",
    "Dga",
    "DgaParameters",
    "make_family",
    "SimConfig",
    "simulate",
    "SECONDS_PER_DAY",
    "Timeline",
    "__version__",
]
